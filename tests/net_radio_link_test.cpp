#include "net/radio_link.h"

#include "radio/energy_meter.h"

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace etrain::net {
namespace {

struct LinkFixture {
  sim::Simulator simulator;
  radio::PowerModel model = radio::PowerModel::PaperUmts3G();
  BandwidthTrace trace = BandwidthTrace::constant(1000.0, 60);
  RadioLink link{simulator, model, trace};
};

TEST(RadioLink, SingleTransmissionDurationFollowsBandwidth) {
  LinkFixture f;
  TimePoint completed = -1;
  f.simulator.schedule_at(10.0, [&] {
    f.link.submit({.bytes = 2500,
                   .kind = radio::TxKind::kData,
                   .app_id = 0,
                   .packet_id = 1,
                   .on_complete = [&](const radio::Transmission& tx,
                                      TxOutcome outcome) {
                     EXPECT_EQ(outcome, TxOutcome::kSuccess);
                     completed = tx.end();
                   }});
  });
  f.simulator.run_until(100.0);
  EXPECT_DOUBLE_EQ(completed, 12.5);  // 2500 B at 1000 B/s
  ASSERT_EQ(f.link.log().size(), 1u);
  EXPECT_DOUBLE_EQ(f.link.log()[0].start, 10.0);
  EXPECT_DOUBLE_EQ(f.link.log()[0].duration, 2.5);
}

TEST(RadioLink, SerializesConcurrentSubmissions) {
  LinkFixture f;
  std::vector<std::int64_t> completion_order;
  f.simulator.schedule_at(5.0, [&] {
    for (std::int64_t id = 0; id < 3; ++id) {
      f.link.submit({.bytes = 1000,
                     .kind = radio::TxKind::kData,
                     .app_id = 0,
                     .packet_id = id,
                     .on_complete = [&completion_order, id](
                                        const radio::Transmission&, TxOutcome) {
                       completion_order.push_back(id);
                     }});
    }
    EXPECT_TRUE(f.link.busy());
    EXPECT_EQ(f.link.queued(), 2u);
  });
  f.simulator.run_until(100.0);
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order, (std::vector<std::int64_t>{0, 1, 2}));
  // Back-to-back: 5-6, 6-7, 7-8.
  EXPECT_DOUBLE_EQ(f.link.log()[1].start, 6.0);
  EXPECT_DOUBLE_EQ(f.link.log()[2].start, 7.0);
  EXPECT_FALSE(f.link.busy());
}

TEST(RadioLink, LogNeverOverlaps) {
  LinkFixture f;
  for (int i = 0; i < 20; ++i) {
    f.simulator.schedule_at(i * 0.4, [&] {
      f.link.submit({.bytes = 700, .kind = radio::TxKind::kData});
    });
  }
  f.simulator.run_until(1000.0);
  ASSERT_EQ(f.link.log().size(), 20u);
  for (std::size_t i = 1; i < f.link.log().size(); ++i) {
    EXPECT_GE(f.link.log()[i].start, f.link.log()[i - 1].end() - 1e-9);
  }
}

TEST(RadioLink, PromotionDelayInsertedFromIdle) {
  sim::Simulator simulator;
  const auto model = radio::PowerModel::Realistic3G();
  const auto trace = BandwidthTrace::constant(1000.0, 60);
  RadioLink link(simulator, model, trace);
  simulator.schedule_at(10.0, [&] {
    link.submit({.bytes = 1000, .kind = radio::TxKind::kData});
  });
  simulator.run_until(100.0);
  ASSERT_EQ(link.log().size(), 1u);
  EXPECT_DOUBLE_EQ(link.log()[0].setup, 2.0);  // IDLE -> DCH
  EXPECT_DOUBLE_EQ(link.log()[0].end(), 13.0);
}

TEST(RadioLink, NoPromotionDelayInsideTail) {
  sim::Simulator simulator;
  const auto model = radio::PowerModel::Realistic3G();
  const auto trace = BandwidthTrace::constant(1000.0, 60);
  RadioLink link(simulator, model, trace);
  simulator.schedule_at(10.0, [&] {
    link.submit({.bytes = 1000, .kind = radio::TxKind::kHeartbeat});
  });
  // Second request lands 3 s after the first finished — within the DCH tail.
  simulator.schedule_at(16.0, [&] {
    link.submit({.bytes = 1000, .kind = radio::TxKind::kData});
  });
  simulator.run_until(100.0);
  ASSERT_EQ(link.log().size(), 2u);
  EXPECT_DOUBLE_EQ(link.log()[1].setup, 0.0);
}

TEST(RadioLink, CompletionCallbackOptional) {
  LinkFixture f;
  f.simulator.schedule_at(0.0, [&] {
    f.link.submit({.bytes = 100, .kind = radio::TxKind::kData});
  });
  EXPECT_NO_THROW(f.simulator.run_until(50.0));
  EXPECT_EQ(f.link.log().size(), 1u);
}

TEST(RadioLink, HeartbeatAndDataKindsRecorded) {
  LinkFixture f;
  f.simulator.schedule_at(0.0, [&] {
    f.link.submit({.bytes = 378, .kind = radio::TxKind::kHeartbeat,
                   .app_id = 2});
    f.link.submit({.bytes = 5000, .kind = radio::TxKind::kData,
                   .app_id = 1, .packet_id = 77});
  });
  f.simulator.run_until(100.0);
  ASSERT_EQ(f.link.log().size(), 2u);
  EXPECT_EQ(f.link.log()[0].kind, radio::TxKind::kHeartbeat);
  EXPECT_EQ(f.link.log()[0].app_id, 2);
  EXPECT_EQ(f.link.log()[1].packet_id, 77);
}

TEST(RadioLink, LossyTransferRetriesWithBackoffThenSucceeds) {
  LinkFixture f;
  FaultPlan plan;
  plan.seed = 7;
  plan.loss_probability = 1.0;  // every attempt fails ...
  plan.max_retries = 3;
  plan.backoff_base = 4.0;
  plan.backoff_factor = 2.0;
  plan.backoff_cap = 1000.0;
  f.link.set_fault_plan(plan);
  int failures = 0;
  TxOutcome final_outcome = TxOutcome::kSuccess;
  f.simulator.schedule_at(0.0, [&] {
    f.link.submit({.bytes = 1000,
                   .kind = radio::TxKind::kData,
                   .packet_id = 5,
                   .on_complete = [&](const radio::Transmission& tx,
                                      TxOutcome outcome) {
                     final_outcome = outcome;
                     failures += (outcome == TxOutcome::kFailed) ? 1 : 0;
                   }});
  });
  f.simulator.run_until(2000.0);
  // 1 initial + 3 retries, all lost -> exactly one kFailed callback.
  EXPECT_EQ(final_outcome, TxOutcome::kFailed);
  EXPECT_EQ(failures, 1);
  ASSERT_EQ(f.link.log().size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.link.log()[i].failed);
    EXPECT_EQ(f.link.log()[i].attempt, i + 1);
  }
  EXPECT_EQ(f.link.log().failed_count(), 4u);
  // Backoff gaps between attempt ends and next starts: 4, 8, 16 s.
  EXPECT_DOUBLE_EQ(f.link.log()[1].start - f.link.log()[0].end(), 4.0);
  EXPECT_DOUBLE_EQ(f.link.log()[2].start - f.link.log()[1].end(), 8.0);
  EXPECT_DOUBLE_EQ(f.link.log()[3].start - f.link.log()[2].end(), 16.0);
}

TEST(RadioLink, BackoffDelayIsCapped) {
  FaultPlan plan;
  plan.backoff_base = 2.0;
  plan.backoff_factor = 2.0;
  plan.backoff_cap = 10.0;
  EXPECT_DOUBLE_EQ(plan.backoff_delay(1), 2.0);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(2), 4.0);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(3), 8.0);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(4), 10.0);  // capped
  EXPECT_DOUBLE_EQ(plan.backoff_delay(40), 10.0);
}

TEST(RadioLink, HeartbeatsAreFireAndForget) {
  LinkFixture f;
  FaultPlan plan;
  plan.loss_probability = 1.0;
  f.link.set_fault_plan(plan);
  int callbacks = 0;
  TxOutcome outcome = TxOutcome::kSuccess;
  f.simulator.schedule_at(0.0, [&] {
    f.link.submit({.bytes = 100,
                   .kind = radio::TxKind::kHeartbeat,
                   .on_complete = [&](const radio::Transmission&,
                                      TxOutcome o) {
                     ++callbacks;
                     outcome = o;
                   }});
  });
  f.simulator.run_until(500.0);
  // No retransmission: the next cycle's beat supersedes a lost one.
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(outcome, TxOutcome::kFailed);
  EXPECT_EQ(f.link.log().size(), 1u);
}

TEST(RadioLink, OutageDefersTransferStart) {
  LinkFixture f;
  FaultPlan plan;
  plan.outages = {{5.0, 20.0}};
  f.link.set_fault_plan(plan);
  f.simulator.schedule_at(10.0, [&] {
    f.link.submit({.bytes = 1000, .kind = radio::TxKind::kData});
  });
  f.simulator.run_until(100.0);
  ASSERT_EQ(f.link.log().size(), 1u);
  EXPECT_FALSE(f.link.log()[0].failed);
  // Deferred to outage end; no airtime billed during the gap.
  EXPECT_DOUBLE_EQ(f.link.log()[0].start, 20.0);
}

TEST(RadioLink, OutageTruncatesInFlightTransfer) {
  LinkFixture f;
  FaultPlan plan;
  plan.outages = {{12.0, 1000.0}};  // begins mid-flight, ends past horizon
  plan.max_retries = 0;             // fail immediately, no retry chain
  f.link.set_fault_plan(plan);
  TxOutcome outcome = TxOutcome::kSuccess;
  f.simulator.schedule_at(10.0, [&] {
    f.link.submit({.bytes = 10000,  // 10 s at 1000 B/s — would end at 20
                   .kind = radio::TxKind::kData,
                   .on_complete = [&](const radio::Transmission&,
                                      TxOutcome o) { outcome = o; }});
  });
  f.simulator.run_until(500.0);
  EXPECT_EQ(outcome, TxOutcome::kFailed);
  ASSERT_EQ(f.link.log().size(), 1u);
  EXPECT_TRUE(f.link.log()[0].failed);
  // Partial airtime billed: the 2 s before the outage cut the stream.
  EXPECT_DOUBLE_EQ(f.link.log()[0].start, 10.0);
  EXPECT_DOUBLE_EQ(f.link.log()[0].duration, 2.0);
}

TEST(RadioLink, TeardownCancelsQueuedAndInflightExactlyOnce) {
  LinkFixture f;
  FaultPlan plan;
  plan.loss_probability = 1.0;  // force the first submission into backoff
  plan.backoff_base = 50.0;
  f.link.set_fault_plan(plan);
  std::vector<TxOutcome> outcomes;
  const auto record = [&](const radio::Transmission&, TxOutcome o) {
    outcomes.push_back(o);
  };
  f.simulator.schedule_at(0.0, [&] {
    // First: fails at ~1 s, sits in backoff until 51 s.
    f.link.submit({.bytes = 1000, .kind = radio::TxKind::kData,
                   .packet_id = 1, .on_complete = record});
  });
  f.simulator.schedule_at(2.0, [&] {
    // In-flight at teardown time plus one queued behind it.
    f.link.submit({.bytes = 50000, .kind = radio::TxKind::kData,
                   .packet_id = 2, .on_complete = record});
    f.link.submit({.bytes = 1000, .kind = radio::TxKind::kData,
                   .packet_id = 3, .on_complete = record});
  });
  f.simulator.schedule_at(10.0, [&] { f.link.teardown(); });
  f.simulator.run_until(200.0);
  // Every submission resolves exactly once, all as kCancelled.
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto o : outcomes) EXPECT_EQ(o, TxOutcome::kCancelled);
  EXPECT_FALSE(f.link.busy());
  EXPECT_EQ(f.link.queued(), 0u);
  EXPECT_EQ(f.link.backing_off(), 0u);
  // Submitting after teardown is a contract violation.
  EXPECT_THROW(
      f.link.submit({.bytes = 1, .kind = radio::TxKind::kData}),
      std::logic_error);
}

TEST(RadioLink, FaultSequenceIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    LinkFixture f;
    FaultPlan plan;
    plan.seed = seed;
    plan.loss_probability = 0.4;
    plan.backoff_base = 1.0;
    f.link.set_fault_plan(plan);
    for (int i = 0; i < 30; ++i) {
      f.simulator.schedule_at(i * 20.0, [&f, i] {
        f.link.submit({.bytes = 2000, .kind = radio::TxKind::kData,
                       .packet_id = i});
      });
    }
    f.simulator.run_until(5000.0);
    std::vector<std::pair<double, bool>> shape;
    for (const auto& tx : f.link.log().entries()) {
      shape.emplace_back(tx.start, tx.failed);
    }
    return shape;
  };
  EXPECT_EQ(run(11), run(11));      // same seed: byte-identical sequence
  EXPECT_NE(run(11), run(12));      // different seed: different faults
}

TEST(RadioLink, NoFaultPlanMatchesNoneBitIdentically) {
  const auto run = [](bool set_none) {
    LinkFixture f;
    if (set_none) f.link.set_fault_plan(FaultPlan::none());
    for (int i = 0; i < 10; ++i) {
      f.simulator.schedule_at(i * 7.0, [&f, i] {
        f.link.submit({.bytes = 1500, .kind = radio::TxKind::kData,
                       .packet_id = i});
      });
    }
    f.simulator.run_until(1000.0);
    std::vector<std::pair<double, double>> shape;
    for (const auto& tx : f.link.log().entries()) {
      shape.emplace_back(tx.start, tx.duration);
    }
    return shape;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(RadioLink, EnergyOfLinkLogMatchesMeter) {
  LinkFixture f;
  f.simulator.schedule_at(0.0, [&] {
    f.link.submit({.bytes = 1000, .kind = radio::TxKind::kHeartbeat});
  });
  f.simulator.schedule_at(100.0, [&] {
    f.link.submit({.bytes = 3000, .kind = radio::TxKind::kData});
  });
  f.simulator.run_until(200.0);
  const auto report = radio::measure_energy(f.link.log(), f.model, 200.0);
  // 1 s + 3 s of data, two full tails (gap 99 s and horizon-tail 97 s).
  EXPECT_NEAR(report.tx_energy, f.model.tx_extra_power * 4.0, 1e-9);
  EXPECT_NEAR(report.tail_energy(), 2.0 * f.model.full_tail_energy(), 1e-9);
}

}  // namespace
}  // namespace etrain::net
