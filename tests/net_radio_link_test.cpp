#include "net/radio_link.h"

#include "radio/energy_meter.h"

#include <vector>

#include <gtest/gtest.h>

namespace etrain::net {
namespace {

struct LinkFixture {
  sim::Simulator simulator;
  radio::PowerModel model = radio::PowerModel::PaperUmts3G();
  BandwidthTrace trace = BandwidthTrace::constant(1000.0, 60);
  RadioLink link{simulator, model, trace};
};

TEST(RadioLink, SingleTransmissionDurationFollowsBandwidth) {
  LinkFixture f;
  TimePoint completed = -1;
  f.simulator.schedule_at(10.0, [&] {
    f.link.submit({.bytes = 2500,
                   .kind = radio::TxKind::kData,
                   .app_id = 0,
                   .packet_id = 1,
                   .on_complete = [&](const radio::Transmission& tx) {
                     completed = tx.end();
                   }});
  });
  f.simulator.run_until(100.0);
  EXPECT_DOUBLE_EQ(completed, 12.5);  // 2500 B at 1000 B/s
  ASSERT_EQ(f.link.log().size(), 1u);
  EXPECT_DOUBLE_EQ(f.link.log()[0].start, 10.0);
  EXPECT_DOUBLE_EQ(f.link.log()[0].duration, 2.5);
}

TEST(RadioLink, SerializesConcurrentSubmissions) {
  LinkFixture f;
  std::vector<std::int64_t> completion_order;
  f.simulator.schedule_at(5.0, [&] {
    for (std::int64_t id = 0; id < 3; ++id) {
      f.link.submit({.bytes = 1000,
                     .kind = radio::TxKind::kData,
                     .app_id = 0,
                     .packet_id = id,
                     .on_complete = [&completion_order, id](const radio::Transmission&) {
                       completion_order.push_back(id);
                     }});
    }
    EXPECT_TRUE(f.link.busy());
    EXPECT_EQ(f.link.queued(), 2u);
  });
  f.simulator.run_until(100.0);
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order, (std::vector<std::int64_t>{0, 1, 2}));
  // Back-to-back: 5-6, 6-7, 7-8.
  EXPECT_DOUBLE_EQ(f.link.log()[1].start, 6.0);
  EXPECT_DOUBLE_EQ(f.link.log()[2].start, 7.0);
  EXPECT_FALSE(f.link.busy());
}

TEST(RadioLink, LogNeverOverlaps) {
  LinkFixture f;
  for (int i = 0; i < 20; ++i) {
    f.simulator.schedule_at(i * 0.4, [&] {
      f.link.submit({.bytes = 700, .kind = radio::TxKind::kData});
    });
  }
  f.simulator.run_until(1000.0);
  ASSERT_EQ(f.link.log().size(), 20u);
  for (std::size_t i = 1; i < f.link.log().size(); ++i) {
    EXPECT_GE(f.link.log()[i].start, f.link.log()[i - 1].end() - 1e-9);
  }
}

TEST(RadioLink, PromotionDelayInsertedFromIdle) {
  sim::Simulator simulator;
  const auto model = radio::PowerModel::Realistic3G();
  const auto trace = BandwidthTrace::constant(1000.0, 60);
  RadioLink link(simulator, model, trace);
  simulator.schedule_at(10.0, [&] {
    link.submit({.bytes = 1000, .kind = radio::TxKind::kData});
  });
  simulator.run_until(100.0);
  ASSERT_EQ(link.log().size(), 1u);
  EXPECT_DOUBLE_EQ(link.log()[0].setup, 2.0);  // IDLE -> DCH
  EXPECT_DOUBLE_EQ(link.log()[0].end(), 13.0);
}

TEST(RadioLink, NoPromotionDelayInsideTail) {
  sim::Simulator simulator;
  const auto model = radio::PowerModel::Realistic3G();
  const auto trace = BandwidthTrace::constant(1000.0, 60);
  RadioLink link(simulator, model, trace);
  simulator.schedule_at(10.0, [&] {
    link.submit({.bytes = 1000, .kind = radio::TxKind::kHeartbeat});
  });
  // Second request lands 3 s after the first finished — within the DCH tail.
  simulator.schedule_at(16.0, [&] {
    link.submit({.bytes = 1000, .kind = radio::TxKind::kData});
  });
  simulator.run_until(100.0);
  ASSERT_EQ(link.log().size(), 2u);
  EXPECT_DOUBLE_EQ(link.log()[1].setup, 0.0);
}

TEST(RadioLink, CompletionCallbackOptional) {
  LinkFixture f;
  f.simulator.schedule_at(0.0, [&] {
    f.link.submit({.bytes = 100, .kind = radio::TxKind::kData});
  });
  EXPECT_NO_THROW(f.simulator.run_until(50.0));
  EXPECT_EQ(f.link.log().size(), 1u);
}

TEST(RadioLink, HeartbeatAndDataKindsRecorded) {
  LinkFixture f;
  f.simulator.schedule_at(0.0, [&] {
    f.link.submit({.bytes = 378, .kind = radio::TxKind::kHeartbeat,
                   .app_id = 2});
    f.link.submit({.bytes = 5000, .kind = radio::TxKind::kData,
                   .app_id = 1, .packet_id = 77});
  });
  f.simulator.run_until(100.0);
  ASSERT_EQ(f.link.log().size(), 2u);
  EXPECT_EQ(f.link.log()[0].kind, radio::TxKind::kHeartbeat);
  EXPECT_EQ(f.link.log()[0].app_id, 2);
  EXPECT_EQ(f.link.log()[1].packet_id, 77);
}

TEST(RadioLink, EnergyOfLinkLogMatchesMeter) {
  LinkFixture f;
  f.simulator.schedule_at(0.0, [&] {
    f.link.submit({.bytes = 1000, .kind = radio::TxKind::kHeartbeat});
  });
  f.simulator.schedule_at(100.0, [&] {
    f.link.submit({.bytes = 3000, .kind = radio::TxKind::kData});
  });
  f.simulator.run_until(200.0);
  const auto report = radio::measure_energy(f.link.log(), f.model, 200.0);
  // 1 s + 3 s of data, two full tails (gap 99 s and horizon-tail 97 s).
  EXPECT_NEAR(report.tx_energy, f.model.tx_extra_power * 4.0, 1e-9);
  EXPECT_NEAR(report.tail_energy(), 2.0 * f.model.full_tail_energy(), 1e-9);
}

}  // namespace
}  // namespace etrain::net
