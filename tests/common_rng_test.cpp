#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace etrain {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanIsMean) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential_mean(20.0));
  EXPECT_NEAR(s.mean(), 20.0, 0.3);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, NormalZeroStddevIsConstant) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(rng.normal(4.2, 0.0), 4.2);
}

TEST(Rng, TruncatedNormalRespectsMinimum) {
  // Paper workload: Weibo sizes mean 2 KB, min 100 B.
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    EXPECT_GE(rng.truncated_normal(2000.0, 1000.0, 100.0), 100.0);
  }
}

TEST(Rng, TruncatedNormalDegenerateParametersTerminate) {
  // Mean far below the minimum: rejection sampling must not spin forever.
  Rng rng(9);
  const double v = rng.truncated_normal(-1e9, 1.0, 100.0);
  EXPECT_GE(v, 100.0);
}

TEST(Rng, TruncatedNormalMeanRoughlyPreservedWhenTruncationMild) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(rng.truncated_normal(5000.0, 1000.0, 1000.0));
  }
  // Truncation at 4 sigma below the mean barely shifts it.
  EXPECT_NEAR(s.mean(), 5000.0, 30.0);
}

TEST(Rng, PoissonMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(static_cast<double>(rng.poisson(4.0)));
  }
  EXPECT_NEAR(s.mean(), 4.0, 0.05);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(12);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ForkStreamsAreIndependentOfSiblingUse) {
  // Forking both children first, then drawing, must equal drawing from the
  // first child before forking the second with the same parent state.
  Rng parent1(42), parent2(42);
  [[maybe_unused]] Rng child_a1 = parent1.fork();
  Rng child_b1 = parent1.fork();
  Rng child_a2 = parent2.fork();
  // Draw a lot from child_a2 — must not affect the next fork of parent2.
  for (int i = 0; i < 1000; ++i) child_a2.uniform(0, 1);
  Rng child_b2 = parent2.fork();
  EXPECT_DOUBLE_EQ(child_b1.uniform(0, 1), child_b2.uniform(0, 1));
}

TEST(Rng, ForkedChildrenProduceDistinctStreams) {
  Rng parent(42);
  Rng a = parent.fork();
  Rng b = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace etrain
