// End-to-end fault semantics in the slotted harness: bit-identity under
// FaultPlan::none(), seed determinism, recovery/requeue with delay still
// accruing, heartbeat drops, and outage deferral.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baselines/registry.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "obs/metrics.h"

namespace etrain::experiments {
namespace {

Scenario base_scenario() {
  return ScenarioBuilder()
      .lambda(0.08)
      .horizon(1800.0)
      .model(radio::PowerModel::PaperSimulation())
      .build();
}

RunMetrics run_with_registry(const Scenario& s, const std::string& spec,
                             obs::Registry* registry) {
  const auto policy = baselines::make_policy(spec);
  return run_slotted(s, *policy, obs::Observers{nullptr, registry});
}

void expect_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_DOUBLE_EQ(a.network_energy(), b.network_energy());
  EXPECT_DOUBLE_EQ(a.normalized_delay, b.normalized_delay);
  EXPECT_DOUBLE_EQ(a.violation_ratio, b.violation_ratio);
  ASSERT_EQ(a.log.entries().size(), b.log.entries().size());
  for (std::size_t i = 0; i < a.log.entries().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.log.entries()[i].start, b.log.entries()[i].start);
    EXPECT_DOUBLE_EQ(a.log.entries()[i].duration,
                     b.log.entries()[i].duration);
    EXPECT_EQ(a.log.entries()[i].failed, b.log.entries()[i].failed);
  }
}

TEST(ExpFaultsTest, ExplicitNonePlanIsBitIdenticalToDefault) {
  Scenario plain = base_scenario();
  Scenario with_none = base_scenario();
  with_none.faults = net::FaultPlan::none();
  const auto policy_a = baselines::make_policy("etrain:theta=1,k=20");
  const auto policy_b = baselines::make_policy("etrain:theta=1,k=20");
  expect_identical(run_slotted(plain, *policy_a),
                   run_slotted(with_none, *policy_b));
}

TEST(ExpFaultsTest, FaultRunsAreSeedDeterministic) {
  const Scenario s = ScenarioBuilder()
                         .lambda(0.08)
                         .horizon(1800.0)
                         .model(radio::PowerModel::PaperSimulation())
                         .loss(0.2)
                         .outages(0.15)
                         .heartbeat_jitter(5.0)
                         .heartbeat_drops(0.1)
                         .fault_seed(77)
                         .build();
  const auto first = run_with_registry(s, "etrain:theta=1,k=20", nullptr);
  const auto second = run_with_registry(s, "etrain:theta=1,k=20", nullptr);
  expect_identical(first, second);
  // Faults actually fired: some attempts are marked failed in the log.
  const auto failed =
      std::count_if(first.log.entries().begin(), first.log.entries().end(),
                    [](const auto& tx) { return tx.failed; });
  EXPECT_GT(failed, 0);
}

TEST(ExpFaultsTest, DifferentFaultSeedsGiveDifferentFailureSequences) {
  ScenarioBuilder builder;
  builder.lambda(0.08)
      .horizon(1800.0)
      .model(radio::PowerModel::PaperSimulation())
      .loss(0.25);
  ScenarioBuilder b1 = builder;
  ScenarioBuilder b2 = builder;
  const Scenario s1 = b1.fault_seed(1).build();
  const Scenario s2 = b2.fault_seed(2).build();
  obs::Registry r1, r2;
  run_with_registry(s1, "baseline", &r1);
  run_with_registry(s2, "baseline", &r2);
  const auto f1 = r1.snapshot().counter("run.tx_failures");
  const auto f2 = r2.snapshot().counter("run.tx_failures");
  EXPECT_GT(f1, 0u);
  EXPECT_GT(f2, 0u);
  // Independent hashed draws: the two sequences should not coincide.
  EXPECT_NE(f1, f2);
}

TEST(ExpFaultsTest, EveryPacketIsDeliveredDespiteTotalLoss) {
  // loss = 1.0: every live attempt fails, every chain exhausts its retry
  // budget and requeues. The horizon force-flush then delivers faultlessly,
  // so no packet is ever silently dropped — delay keeps accruing instead.
  Scenario s = ScenarioBuilder()
                   .lambda(0.04)
                   .horizon(1800.0)
                   .model(radio::PowerModel::PaperSimulation())
                   .loss(1.0)
                   .build();
  obs::Registry registry;
  const auto m = run_with_registry(s, "etrain:theta=1,k=20", &registry);
  const Scenario clean = ScenarioBuilder()
                             .lambda(0.04)
                             .horizon(1800.0)
                             .model(radio::PowerModel::PaperSimulation())
                             .build();
  obs::Registry clean_registry;
  const auto clean_m =
      run_with_registry(clean, "etrain:theta=1,k=20", &clean_registry);

  // Same workload in, same packet count out.
  EXPECT_EQ(m.outcomes.size(), clean_m.outcomes.size());
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter("run.packets_recovered"), 0u);
  EXPECT_GT(snap.counter("run.tx_retries"), 0u);
  // Recovery is not free: delay accrues across the failed chains.
  EXPECT_GT(m.normalized_delay, clean_m.normalized_delay);
  // Failed attempts are billed: the log carries failed airtime.
  EXPECT_GT(m.log.failed_airtime(), 0.0);
}

TEST(ExpFaultsTest, HeartbeatDropsThinTheTimetable) {
  ScenarioBuilder builder;
  builder.lambda(0.08).horizon(1800.0).model(
      radio::PowerModel::PaperSimulation());
  ScenarioBuilder faulty = builder;
  const Scenario clean = builder.build();
  const Scenario dropped =
      faulty.heartbeat_drops(0.5).fault_seed(3).build();

  obs::Registry clean_reg, drop_reg;
  const auto clean_m = run_with_registry(clean, "baseline", &clean_reg);
  const auto drop_m = run_with_registry(dropped, "baseline", &drop_reg);

  const auto clean_beats = clean_m.log.count(radio::TxKind::kHeartbeat);
  const auto dropped_beats = drop_m.log.count(radio::TxKind::kHeartbeat);
  EXPECT_LT(dropped_beats, clean_beats);
  EXPECT_EQ(drop_reg.snapshot().counter("run.heartbeats_dropped"),
            clean_beats - dropped_beats);
}

TEST(ExpFaultsTest, OutagesDeferTransmissionsOutOfTheGap) {
  const Scenario s = ScenarioBuilder()
                         .lambda(0.08)
                         .horizon(1800.0)
                         .model(radio::PowerModel::PaperSimulation())
                         .outage_episodes({{300.0, 500.0}, {900.0, 1000.0}})
                         .build();
  obs::Registry registry;
  const auto m = run_with_registry(s, "baseline", &registry);
  EXPECT_GT(registry.snapshot().counter("run.outage_deferrals"), 0u);
  // Nothing successfully transmits inside a coverage gap.
  for (const auto& tx : m.log.entries()) {
    if (tx.failed) continue;
    const bool inside = (tx.start >= 300.0 && tx.start < 500.0) ||
                        (tx.start >= 900.0 && tx.start < 1000.0);
    EXPECT_FALSE(inside) << "tx started at " << tx.start
                         << " inside an outage";
  }
}

TEST(ExpFaultsTest, HeartbeatJitterKeepsHarnessDeterministic) {
  const Scenario s = ScenarioBuilder()
                         .lambda(0.08)
                         .horizon(1800.0)
                         .model(radio::PowerModel::PaperSimulation())
                         .heartbeat_jitter(10.0)
                         .fault_seed(21)
                         .build();
  const auto a = run_with_registry(s, "etrain:theta=1,k=20", nullptr);
  const auto b = run_with_registry(s, "etrain:theta=1,k=20", nullptr);
  expect_identical(a, b);
  // Jittered beats still transmit (jitter perturbs, drop removes).
  EXPECT_GT(a.log.count(radio::TxKind::kHeartbeat), 0u);
}

}  // namespace
}  // namespace etrain::experiments
