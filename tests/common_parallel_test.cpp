#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace etrain {
namespace {

/// Restores automatic job selection when a test overrides it.
struct JobsGuard {
  ~JobsGuard() { set_default_jobs(0); }
};

TEST(SplitMix64, MatchesReferenceVector) {
  // First output of the reference splitmix64 stream seeded with 0.
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFULL);
  // Bijective finalizer: distinct inputs give distinct outputs.
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(TaskSeed, PureAndDistinct) {
  EXPECT_EQ(task_seed(42, 7), task_seed(42, 7));  // pure function
  // Nearby indices and nearby base seeds decorrelate.
  EXPECT_NE(task_seed(42, 0), task_seed(42, 1));
  EXPECT_NE(task_seed(42, 0), task_seed(43, 0));
  // Index is mixed before xor: task_seed(a, b) != task_seed(b, a) in
  // general, i.e. base and index are not interchangeable.
  EXPECT_NE(task_seed(1, 2), task_seed(2, 1));
}

TEST(DefaultJobs, EnvAndOverridePriority) {
  JobsGuard guard;
  ASSERT_EQ(unsetenv("ETRAIN_JOBS"), 0);
  set_default_jobs(0);
  EXPECT_GE(default_jobs(), 1u);  // hardware fallback

  ASSERT_EQ(setenv("ETRAIN_JOBS", "3", 1), 0);
  EXPECT_EQ(default_jobs(), 3u);

  set_default_jobs(2);  // explicit override beats the environment
  EXPECT_EQ(default_jobs(), 2u);

  set_default_jobs(0);
  EXPECT_EQ(default_jobs(), 3u);  // back to the environment
  ASSERT_EQ(unsetenv("ETRAIN_JOBS"), 0);
}

TEST(DefaultJobs, RejectsMalformedEnv) {
  ASSERT_EQ(setenv("ETRAIN_JOBS", "banana", 1), 0);
  EXPECT_THROW(default_jobs(), std::invalid_argument);
  ASSERT_EQ(setenv("ETRAIN_JOBS", "0", 1), 0);
  EXPECT_THROW(default_jobs(), std::invalid_argument);
  ASSERT_EQ(unsetenv("ETRAIN_JOBS"), 0);
}

TEST(ParseJobsFlag, AcceptedSpellings) {
  const char* argv1[] = {"bench", "--jobs", "4"};
  EXPECT_EQ(parse_jobs_flag(3, const_cast<char**>(argv1)), 4u);
  const char* argv2[] = {"bench", "--jobs=8"};
  EXPECT_EQ(parse_jobs_flag(2, const_cast<char**>(argv2)), 8u);
  const char* argv3[] = {"bench", "-j2"};
  EXPECT_EQ(parse_jobs_flag(2, const_cast<char**>(argv3)), 2u);
  const char* argv4[] = {"bench", "--quick"};
  EXPECT_EQ(parse_jobs_flag(2, const_cast<char**>(argv4)), 0u);  // absent
  const char* argv5[] = {"bench"};
  EXPECT_EQ(parse_jobs_flag(1, const_cast<char**>(argv5)), 0u);
}

TEST(ParseJobsFlag, MalformedThrows) {
  const char* argv1[] = {"bench", "--jobs"};
  EXPECT_THROW(parse_jobs_flag(2, const_cast<char**>(argv1)),
               std::invalid_argument);
  const char* argv2[] = {"bench", "--jobs=zero"};
  EXPECT_THROW(parse_jobs_flag(2, const_cast<char**>(argv2)),
               std::invalid_argument);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // The pool stays usable after an idle period.
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
    // No wait_idle(): shutdown itself must run everything.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelMap, PreservesInputOrder) {
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  // Early items sleep longest so completion order inverts input order.
  const auto results = parallel_map(
      items,
      [](int v) {
        std::this_thread::sleep_for(std::chrono::microseconds(640 - 10 * v));
        return v * v;
      },
      8);
  ASSERT_EQ(results.size(), items.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, IndexAwareCallable) {
  const std::vector<int> items = {10, 20, 30};
  const auto results = parallel_map(
      items, [](int v, std::size_t i) { return v + static_cast<int>(i); },
      2);
  EXPECT_EQ(results, (std::vector<int>{10, 21, 32}));
}

TEST(ParallelMap, EmptyAndSingleItem) {
  const std::vector<int> empty;
  EXPECT_TRUE(parallel_map(empty, [](int v) { return v; }, 4).empty());
  const std::vector<int> one = {7};
  EXPECT_EQ(parallel_map(one, [](int v) { return v * 2; }, 4),
            (std::vector<int>{14}));
}

TEST(ParallelMap, PropagatesExceptions) {
  std::vector<int> items(16);
  std::iota(items.begin(), items.end(), 0);
  EXPECT_THROW(parallel_map(
                   items,
                   [](int v) {
                     if (v == 5) throw std::runtime_error("task 5 failed");
                     return v;
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelMap, LowestIndexExceptionWins) {
  // Two failing tasks; regardless of which finishes first, the rethrown
  // exception must be the lower-index one.
  std::vector<int> items(16);
  std::iota(items.begin(), items.end(), 0);
  try {
    parallel_map(
        items,
        [](int v) {
          if (v == 3) {
            // Give the later failure a head start.
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            throw std::runtime_error("failure at 3");
          }
          if (v == 12) throw std::runtime_error("failure at 12");
          return v;
        },
        4);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "failure at 3");
  }
}

TEST(ParallelMap, TaskSeedDeterministicAcrossJobCounts) {
  // The canonical deterministic-replay pattern: every task seeds its own
  // Rng from task_seed(base, index). Serial and 4-way parallel execution
  // must produce bit-identical draws.
  std::vector<int> items(32);
  std::iota(items.begin(), items.end(), 0);
  const auto draw = [](int /*item*/, std::size_t index) {
    Rng rng(task_seed(20150629, index));
    return rng.uniform(0.0, 1.0) + rng.normal(0.0, 1.0);
  };
  const auto serial = parallel_map(items, draw, 1);
  const auto parallel4 = parallel_map(items, draw, 4);
  ASSERT_EQ(serial.size(), parallel4.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel4[i]) << "draw " << i << " diverged";
  }
}

TEST(ParallelMap, UsesDefaultJobsWhenUnspecified) {
  JobsGuard guard;
  set_default_jobs(4);
  std::vector<int> items(16);
  std::iota(items.begin(), items.end(), 0);
  const auto results = parallel_map(items, [](int v) { return v + 1; });
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace etrain
