#include "radio/rrc_machine.h"

#include <gtest/gtest.h>

namespace etrain::radio {
namespace {

RrcStateMachine paper_machine() {
  return RrcStateMachine(PowerModel::PaperUmts3G());
}

TEST(RrcMachine, StartsIdle) {
  auto m = paper_machine();
  EXPECT_EQ(m.state_at(0.0), RrcState::kIdle);
  EXPECT_FALSE(m.transmitting());
  EXPECT_FALSE(m.last_activity_end().has_value());
}

TEST(RrcMachine, DchDuringTransmission) {
  auto m = paper_machine();
  m.on_transmission_start(100.0);
  EXPECT_TRUE(m.transmitting());
  EXPECT_EQ(m.state_at(100.0), RrcState::kDch);
  EXPECT_EQ(m.state_at(105.0), RrcState::kDch);
}

TEST(RrcMachine, TailProgressionAfterTransmission) {
  auto m = paper_machine();
  m.on_transmission_start(0.0);
  m.on_transmission_end(2.0);
  // delta_D = 10 s of DCH, then delta_F = 7.5 s of FACH, then IDLE.
  EXPECT_EQ(m.state_at(2.0), RrcState::kDch);
  EXPECT_EQ(m.state_at(11.9), RrcState::kDch);
  EXPECT_EQ(m.state_at(12.0), RrcState::kFach);
  EXPECT_EQ(m.state_at(19.4), RrcState::kFach);
  EXPECT_EQ(m.state_at(19.5), RrcState::kIdle);
  EXPECT_EQ(m.state_at(1000.0), RrcState::kIdle);
}

TEST(RrcMachine, PiggybackWindowHasZeroPromotionDelay) {
  // eTrain's core exploit: inside the tail the radio is already up.
  auto m = RrcStateMachine(PowerModel::Realistic3G());
  m.on_transmission_start(0.0);
  m.on_transmission_end(1.0);
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(5.0), 0.0);          // in DCH tail
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(12.0), 1.5);         // in FACH
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(30.0), 2.0);         // back in IDLE
}

TEST(RrcMachine, PaperModelPromotionsAreFree) {
  auto m = paper_machine();
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(0.0), 0.0);
  m.on_transmission_start(0.0);
  m.on_transmission_end(1.0);
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(100.0), 0.0);
}

TEST(RrcMachine, PowerLevelsMatchModel) {
  const PowerModel pm = PowerModel::PaperUmts3G();
  RrcStateMachine m(pm);
  EXPECT_DOUBLE_EQ(m.power_at(0.0), pm.idle_power);
  m.on_transmission_start(10.0);
  EXPECT_DOUBLE_EQ(m.power_at(10.5), pm.idle_power + pm.tx_extra_power);
  m.on_transmission_end(11.0);
  EXPECT_DOUBLE_EQ(m.power_at(15.0), pm.idle_power + pm.dch_extra_power);
  EXPECT_DOUBLE_EQ(m.power_at(25.0), pm.idle_power + pm.fach_extra_power);
  EXPECT_DOUBLE_EQ(m.power_at(50.0), pm.idle_power);
}

TEST(RrcMachine, BackToBackTransmissionsKeepDch) {
  auto m = paper_machine();
  m.on_transmission_start(0.0);
  m.on_transmission_end(1.0);
  m.on_transmission_start(5.0);  // within the DCH tail
  EXPECT_EQ(m.state_at(5.0), RrcState::kDch);
  m.on_transmission_end(6.0);
  EXPECT_EQ(m.state_at(10.0), RrcState::kDch);  // tail restarts from 6.0
  EXPECT_EQ(m.state_at(15.9), RrcState::kDch);
  EXPECT_EQ(m.state_at(16.1), RrcState::kFach);
}

TEST(RrcMachine, DoubleStartThrows) {
  auto m = paper_machine();
  m.on_transmission_start(0.0);
  EXPECT_THROW(m.on_transmission_start(1.0), std::logic_error);
}

TEST(RrcMachine, EndWithoutStartThrows) {
  auto m = paper_machine();
  EXPECT_THROW(m.on_transmission_end(1.0), std::logic_error);
}

TEST(RrcMachine, TimeMovingBackwardsThrows) {
  auto m = paper_machine();
  m.on_transmission_start(10.0);
  m.on_transmission_end(12.0);
  EXPECT_THROW(m.on_transmission_start(5.0), std::invalid_argument);
  EXPECT_THROW(m.state_at(5.0), std::invalid_argument);
}

TEST(RrcMachine, EndBeforeStartThrows) {
  auto m = paper_machine();
  m.on_transmission_start(10.0);
  EXPECT_THROW(m.on_transmission_end(9.0), std::invalid_argument);
}

TEST(RrcMachine, ZeroLengthTransmissionStillTriggersTail) {
  auto m = paper_machine();
  m.on_transmission_start(5.0);
  m.on_transmission_end(5.0);
  EXPECT_EQ(m.state_at(5.0), RrcState::kDch);
  EXPECT_EQ(m.state_at(22.4), RrcState::kFach);
  EXPECT_EQ(m.state_at(22.5), RrcState::kIdle);
}

// Property: for any end time, the state sequence is DCH -> FACH -> IDLE with
// the configured durations.
class TailTimingProperty : public ::testing::TestWithParam<double> {};

TEST_P(TailTimingProperty, StateBoundariesFollowTimers) {
  const double end = GetParam();
  const PowerModel pm = PowerModel::PaperUmts3G();
  RrcStateMachine m(pm);
  m.on_transmission_start(end > 1.0 ? end - 1.0 : 0.0);
  m.on_transmission_end(end);
  EXPECT_EQ(m.state_at(end + pm.dch_tail * 0.5), RrcState::kDch);
  EXPECT_EQ(m.state_at(end + pm.dch_tail + pm.fach_tail * 0.5),
            RrcState::kFach);
  EXPECT_EQ(m.state_at(end + pm.tail_time() + 0.001), RrcState::kIdle);
}

INSTANTIATE_TEST_SUITE_P(EndTimes, TailTimingProperty,
                         ::testing::Values(0.0, 1.0, 17.5, 100.0, 12345.6,
                                           7200.0));

}  // namespace
}  // namespace etrain::radio
