// Live-daemon tests (gateway/gateway.h): an in-process Gateway served by
// its epoll loop on a worker thread, driven over real loopback sockets.
// Pins the graceful-shutdown contract — BYEs and SIGTERM-during-load both
// end in a complete, report_check-clean RunReport manifest whose gateway
// partitions hold exactly — and the protocol-error path (garbage bytes
// drop the connection, and only that connection).
#include "gateway/gateway.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "baselines/registry.h"
#include "gateway/loadgen.h"
#include "obs/report_check.h"
#include "system/protocol.h"

namespace {

using namespace etrain;

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Validates a written manifest and returns the parsed digest.
obs::ReportCheckResult checked(const std::string& path) {
  const obs::ReportCheckResult result = obs::check_run_report_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.gateway_present);
  return result;
}

TEST(GatewayDaemon, GracefulByesProduceACleanManifest) {
  const std::string report_path = "gateway_daemon_graceful.report.json";
  gateway::GatewayConfig config;
  config.time_scale = 100.0;
  config.report_path = report_path;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  const int port = gw.open();
  ASSERT_GT(port, 0);
  std::thread server([&] { gw.run(); });

  gateway::LoadGenConfig load;
  load.port = port;
  load.clients = 20;
  load.duration = 20.0;
  load.time_scale = config.time_scale;
  const gateway::LoadGenResult result = gateway::run_load(load);

  gw.request_stop();
  server.join();

  EXPECT_TRUE(result.all_connected(load));
  EXPECT_EQ(result.protocol_errors, 0u);
  // The shutdown flush guarantees every cargo packet came back as an ACK.
  EXPECT_EQ(result.acks_received, result.cargos_sent);
  EXPECT_EQ(result.latencies.size(), result.acks_received);

  const gateway::GatewayStats& stats = gw.stats();
  EXPECT_EQ(stats.clients_accepted, 20u);
  EXPECT_EQ(stats.clients_disconnected, 20u);  // all left via BYE
  EXPECT_EQ(stats.clients_at_shutdown, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.heartbeats, result.heartbeats_sent);
  EXPECT_EQ(stats.packets_enqueued, result.cargos_sent);
  EXPECT_EQ(stats.packets_enqueued, stats.packets_piggybacked +
                                        stats.packets_dripped +
                                        stats.packets_flushed);
  EXPECT_EQ(stats.transmissions, stats.heartbeats + stats.packets_enqueued);

  const obs::ReportCheckResult report = checked(report_path);
  EXPECT_EQ(report.bench, "gateway");
  EXPECT_EQ(report.gateway_clients, 20.0);
  std::remove(report_path.c_str());
}

TEST(GatewayDaemon, SigtermDuringLoadFlushesAndWritesTheManifest) {
  const std::string report_path = "gateway_daemon_sigterm.report.json";
  gateway::GatewayConfig config;
  config.time_scale = 50.0;
  config.report_path = report_path;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  const int port = gw.open();
  gw.install_signal_handlers();
  std::thread server([&] { gw.run(); });

  // SIGTERM lands mid-drive, while every client is still connected and
  // cargo is still waiting in the gateway's queues.
  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    std::raise(SIGTERM);
  });

  gateway::LoadGenConfig load;
  load.port = port;
  load.clients = 16;
  load.duration = 60.0;
  load.time_scale = config.time_scale;
  load.drain_timeout_s = 5.0;
  const gateway::LoadGenResult result = gateway::run_load(load);
  killer.join();
  server.join();
  gw.restore_signal_handlers();

  EXPECT_TRUE(result.all_connected(load));
  const gateway::GatewayStats& stats = gw.stats();
  // The signal, not BYEs, ended these sessions.
  EXPECT_GT(stats.clients_at_shutdown, 0u);
  EXPECT_EQ(stats.clients_accepted,
            stats.clients_disconnected + stats.clients_at_shutdown);
  EXPECT_EQ(stats.packets_enqueued, stats.packets_piggybacked +
                                        stats.packets_dripped +
                                        stats.packets_flushed);
  EXPECT_EQ(stats.transmissions, stats.heartbeats + stats.packets_enqueued);

  // The manifest survived the abrupt end: schema-complete, partitions
  // exact, ledger re-bills the client meter (report_check enforces all).
  const obs::ReportCheckResult report = checked(report_path);
  EXPECT_EQ(report.gateway_clients, 16.0);
  ASSERT_TRUE(report.gateway_meter_J.has_value());
  ASSERT_TRUE(report.ledger_total_J.has_value());
  EXPECT_NEAR(*report.ledger_total_J, *report.gateway_meter_J, 16 * 1e-9);
  std::remove(report_path.c_str());
}

TEST(GatewayDaemon, GarbageBytesDropOnlyThatConnection) {
  gateway::GatewayConfig config;
  config.time_scale = 100.0;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  const int port = gw.open();
  std::thread server([&] { gw.run(); });

  // A well-behaved client HELLOs; a hostile one sends garbage.
  const int good = connect_loopback(port);
  const int bad = connect_loopback(port);
  ASSERT_GE(good, 0);
  ASSERT_GE(bad, 0);
  system::wire::HelloFrame hello;
  hello.client_id = 1;
  hello.train_apps.push_back(1);
  const std::string hello_bytes = system::wire::encode_hello(hello);
  ASSERT_EQ(::send(good, hello_bytes.data(), hello_bytes.size(), 0),
            static_cast<ssize_t>(hello_bytes.size()));
  const std::string garbage(64, '\xff');
  ASSERT_EQ(::send(bad, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  // The gateway closes the hostile socket; recv sees EOF.
  char byte = 0;
  EXPECT_EQ(::recv(bad, &byte, 1, 0), 0);
  // The good client still works: a heartbeat, then an orderly BYE. The
  // EOF the gateway answers the BYE with doubles as the synchronization
  // point — frames are processed in order, so once it arrives the
  // heartbeat has been counted (stats are only read after join()).
  const std::string hb =
      system::wire::encode_heartbeat(system::wire::HeartbeatFrame{1, 0});
  EXPECT_EQ(::send(good, hb.data(), hb.size(), 0),
            static_cast<ssize_t>(hb.size()));
  const std::string bye = system::wire::encode_bye();
  EXPECT_EQ(::send(good, bye.data(), bye.size(), 0),
            static_cast<ssize_t>(bye.size()));
  EXPECT_EQ(::recv(good, &byte, 1, 0), 0);

  gw.request_stop();
  server.join();
  ::close(good);
  ::close(bad);

  const gateway::GatewayStats& stats = gw.stats();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.heartbeats, 1u);
  EXPECT_EQ(stats.clients_accepted, 2u);
  EXPECT_EQ(stats.clients_disconnected, 2u);
  EXPECT_EQ(stats.clients_at_shutdown, 0u);
}

}  // namespace
