#include "net/bandwidth_trace.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace etrain::net {
namespace {

TEST(BandwidthTrace, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(BandwidthTrace({}), std::invalid_argument);
  EXPECT_THROW(BandwidthTrace({100.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(BandwidthTrace({100.0, -5.0}), std::invalid_argument);
}

TEST(BandwidthTrace, LookupPerSecondBuckets) {
  const BandwidthTrace t({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(t.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.at(0.999), 10.0);
  EXPECT_DOUBLE_EQ(t.at(1.0), 20.0);
  EXPECT_DOUBLE_EQ(t.at(2.5), 30.0);
}

TEST(BandwidthTrace, WrapsAroundPastTheEnd) {
  const BandwidthTrace t({10.0, 20.0});
  EXPECT_DOUBLE_EQ(t.at(2.0), 10.0);
  EXPECT_DOUBLE_EQ(t.at(3.5), 20.0);
  EXPECT_DOUBLE_EQ(t.at(100.0), 10.0);
}

TEST(BandwidthTrace, ConstantTransferDuration) {
  const auto t = BandwidthTrace::constant(1000.0, 100);
  EXPECT_DOUBLE_EQ(t.transfer_duration(500, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(t.transfer_duration(2500, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(t.transfer_duration(0, 0.0), 0.0);
}

TEST(BandwidthTrace, TransferSpansRateChange) {
  // 1000 B/s for one second, then 2000 B/s: 1500 bytes starting at t=0.5
  // consumes 500 B in [0.5,1.0) and 1000 B in [1.0,1.5) -> duration 1.0.
  const BandwidthTrace t({1000.0, 2000.0, 2000.0});
  EXPECT_NEAR(t.transfer_duration(1500, 0.5), 1.0, 1e-9);
}

TEST(BandwidthTrace, TransferStartingMidSecond) {
  const BandwidthTrace t({1000.0, 1000.0});
  EXPECT_NEAR(t.transfer_duration(250, 0.9), 0.25, 1e-9);
}

TEST(BandwidthTrace, LargeTransferWrapsTrace) {
  const BandwidthTrace t({1000.0, 3000.0});  // mean 2000 B/s over the cycle
  // 8000 bytes = two full 2-second cycles.
  EXPECT_NEAR(t.transfer_duration(8000, 0.0), 4.0, 1e-9);
}

TEST(BandwidthTrace, Statistics) {
  const BandwidthTrace t({10.0, 20.0, 60.0});
  EXPECT_DOUBLE_EQ(t.mean(), 30.0);
  EXPECT_DOUBLE_EQ(t.min(), 10.0);
  EXPECT_DOUBLE_EQ(t.max(), 60.0);
  EXPECT_DOUBLE_EQ(t.length(), 3.0);
}

TEST(BandwidthTrace, CsvRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "etrain_net";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "trace.csv").string();
  const BandwidthTrace original({120000.0, 95000.5, 143000.25});
  original.save_csv(path);
  const auto loaded = BandwidthTrace::load_csv(path);
  ASSERT_EQ(loaded.samples().size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.samples()[0], 120000.0);
  EXPECT_DOUBLE_EQ(loaded.samples()[1], 95000.5);
  EXPECT_DOUBLE_EQ(loaded.samples()[2], 143000.25);
}

// Property: transfer_duration is additive — moving A+B bytes takes exactly
// as long as moving A bytes and then B bytes back-to-back.
class TransferAdditivity
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TransferAdditivity, SplitEqualsWhole) {
  const BandwidthTrace t({800.0, 2400.0, 500.0, 1200.0});
  const auto [a, b] = GetParam();
  const double start = 0.3;
  const double d_whole = t.transfer_duration(a + b, start);
  const double d_a = t.transfer_duration(a, start);
  const double d_b = t.transfer_duration(b, start + d_a);
  EXPECT_NEAR(d_whole, d_a + d_b, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Splits, TransferAdditivity,
    ::testing::Values(std::pair{100, 100}, std::pair{1, 9999},
                      std::pair{5000, 5000}, std::pair{123, 4567},
                      std::pair{0, 777}));

}  // namespace
}  // namespace etrain::net
