// Tests for interactive background traffic in the slotted harness (the
// Fig. 11 replay path) and for the figure-export helpers.
#include <filesystem>

#include <gtest/gtest.h>

#include "baselines/baseline_policy.h"
#include "common/csv.h"
#include "core/etrain_scheduler.h"
#include "exp/figure_export.h"
#include "exp/slotted_sim.h"

namespace etrain::experiments {
namespace {

Scenario background_scenario() {
  Scenario s;
  s.horizon = 600.0;
  s.model = radio::PowerModel::PaperUmts3G();
  s.trace = net::BandwidthTrace::constant(120e3, 10);
  s.profiles = {&core::weibo_cost_profile()};
  // Two interactive fetches, no schedulable cargo.
  s.background.push_back(apps::TrainEvent{100.0, 0, 15000});
  s.background.push_back(apps::TrainEvent{400.5, 0, 30000});
  return s;
}

TEST(BackgroundTraffic, TransmittedAtItsTimestamps) {
  auto s = background_scenario();
  baselines::BaselinePolicy policy;
  const auto m = run_slotted(s, policy);
  ASSERT_EQ(m.log.size(), 2u);
  EXPECT_NEAR(m.log[0].start, 100.0, 1e-9);
  EXPECT_NEAR(m.log[1].start, 400.5, 1e-9);
  EXPECT_EQ(m.log[0].kind, radio::TxKind::kData);
}

TEST(BackgroundTraffic, NeverEntersOutcomeMetrics) {
  auto s = background_scenario();
  baselines::BaselinePolicy policy;
  const auto m = run_slotted(s, policy);
  EXPECT_TRUE(m.outcomes.empty());
  EXPECT_DOUBLE_EQ(m.normalized_delay, 0.0);
}

TEST(BackgroundTraffic, DoesNotTriggerHeartbeatFlush) {
  // A background fetch must not be mistaken for a train: eTrain with a
  // huge Theta should keep its cargo queued right through the fetch.
  auto s = background_scenario();
  core::Packet p;
  p.id = 0;
  p.app = 0;
  p.arrival = 50.0;
  p.bytes = 2000;
  p.deadline = 1000.0;
  s.packets = {p};
  core::EtrainScheduler policy(
      {.theta = 1e9, .k = 20, .drip_defer_window = 0.0});
  const auto m = run_slotted(s, policy);
  ASSERT_EQ(m.outcomes.size(), 1u);
  // Only the horizon flush released it — not the fetch at t=100.
  EXPECT_GE(m.outcomes[0].sent, s.horizon - 1e-9);
}

TEST(BackgroundTraffic, SharesTailsWithCargoEnergyWise) {
  // A cargo send right after a background fetch truncates the fetch's tail
  // exactly as it would a heartbeat's.
  auto s = background_scenario();
  core::Packet p;
  p.id = 0;
  p.app = 0;
  p.arrival = 99.0;
  p.bytes = 2000;
  p.deadline = 2.0;  // forces a send right at the fetch
  s.packets = {p};
  baselines::BaselinePolicy policy;
  const auto m = run_slotted(s, policy);
  // 3 transmissions, but the cargo is adjacent to the first fetch: total
  // tails ~ 2 full tails + the sliver between cargo and fetch.
  EXPECT_LT(m.energy.tail_energy(), 2.2 * s.model.full_tail_energy());
}

TEST(FigureExport, FrontierRoundTrip) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    "etrain_results").string();
  ensure_results_dir(dir);
  export_frontier(dir, "test_frontier",
                  {{1.0, 100.0, 10.0, 0.0}, {2.0, 50.0, 20.0, 0.1}});
  const auto rows = read_csv_file(dir + "/test_frontier.csv", true);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NEAR(std::stod(rows[1][1]), 50.0, 1e-9);
  EXPECT_NEAR(std::stod(rows[1][3]), 0.1, 1e-9);
}

TEST(FigureExport, SeriesValidation) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    "etrain_results").string();
  ensure_results_dir(dir);
  EXPECT_THROW(export_series(dir, "bad", {"a", "b"}, {{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(export_series(dir, "bad", {"a", "b"}, {{1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  export_series(dir, "good", {"x", "y"}, {{1.0, 2.0}, {10.0, 20.0}});
  const auto rows = read_csv_file(dir + "/good.csv", true);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NEAR(std::stod(rows[1][1]), 20.0, 1e-9);
}

}  // namespace
}  // namespace etrain::experiments
