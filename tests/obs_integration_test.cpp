// Cross-layer observability checks: a fully traced slotted run and a fully
// traced system (DES) run, verifying the invariants the checker relies on —
// the billed TailCharge events reproduce the meter's tail energy exactly,
// the kernel's EventFire stream matches its executed count, and the export
// round-trips through check_chrome_trace.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/etrain_scheduler.h"
#include "exp/scenario.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"
#include "obs/exporters.h"
#include "obs/trace_buffer.h"
#include "obs/trace_check.h"
#include "system/etrain_system.h"

namespace etrain {
namespace {

using experiments::RunMetrics;

experiments::Scenario small_scenario() {
  experiments::ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 1800.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  return experiments::make_scenario(cfg);
}

double traced_tail_sum(const obs::TraceBuffer& buffer) {
  double sum = 0.0;
  for (const auto& e : buffer.events()) {
    if (e.type == obs::EventType::kTailCharge) sum += e.x;
  }
  return sum;
}

std::size_t count_type(const obs::TraceBuffer& buffer, obs::EventType type) {
  std::size_t n = 0;
  for (const auto& e : buffer.events()) {
    if (e.type == type) ++n;
  }
  return n;
}

TEST(ObsIntegration, SlottedRunTailChargesMatchMeter) {
  const auto scenario = small_scenario();
  obs::TraceBuffer buffer;
  obs::Registry registry;
  core::EtrainScheduler policy({.theta = 0.2, .k = 20});
  policy.attach_observability(&buffer, &registry);
  const RunMetrics m = experiments::run_slotted(
      scenario, policy, obs::Observers{&buffer, &registry});

  const double reported =
      m.energy.tail_energy() + m.wifi_energy.tail_energy();
  EXPECT_GT(reported, 0.0);
  EXPECT_NEAR(traced_tail_sum(buffer), reported, 1e-9);

  // The scheduler's own counters flowed into the run's snapshot.
  EXPECT_FALSE(m.observed.empty());
  EXPECT_GT(m.observed.counter("scheduler.slots"), 0u);
  EXPECT_GT(m.observed.counter("scheduler.gate_opens"), 0u);
  EXPECT_EQ(m.observed.counter("run.heartbeats"),
            m.log.count(radio::TxKind::kHeartbeat));
  // Policy-selected packets; stragglers force-flushed at the horizon are
  // transmitted outside any slot decision and are not counted.
  EXPECT_GT(m.observed.counter("run.packets_piggybacked"), 0u);
  EXPECT_LE(m.observed.counter("run.packets_piggybacked") +
                m.observed.counter("run.packets_dripped"),
            m.outcomes.size());
  EXPECT_GT(count_type(buffer, obs::EventType::kHeartbeatTx), 0u);
  EXPECT_GT(count_type(buffer, obs::EventType::kPacketSelect), 0u);
}

TEST(ObsIntegration, ObserversAreOptionalAndChangeNothing) {
  const auto scenario = small_scenario();
  core::EtrainScheduler plain({.theta = 0.2, .k = 20});
  const RunMetrics base = experiments::run_slotted(scenario, plain);

  obs::TraceBuffer buffer;
  obs::Registry registry;
  core::EtrainScheduler traced({.theta = 0.2, .k = 20});
  traced.attach_observability(&buffer, &registry);
  const RunMetrics observed = experiments::run_slotted(
      scenario, traced, obs::Observers{&buffer, &registry});

  // Observation must not perturb the simulation.
  EXPECT_DOUBLE_EQ(base.network_energy(), observed.network_energy());
  EXPECT_DOUBLE_EQ(base.normalized_delay, observed.normalized_delay);
  EXPECT_EQ(base.log.size(), observed.log.size());
  EXPECT_TRUE(base.observed.empty());
}

TEST(ObsIntegration, SystemRunTraceIsCheckerClean) {
  obs::TraceBuffer buffer;
  obs::Registry registry;
  system::EtrainSystem::Config cfg;
  cfg.horizon = 1800.0;
  cfg.observers = obs::Observers{&buffer, &registry};
  system::EtrainSystem sys(cfg, net::wuhan_trace());
  const auto trains = apps::default_train_specs();
  sys.add_train_app(trains[0], 0.0);
  Rng rng(7);
  auto cargo = apps::default_cargo_specs();
  Rng stream = rng.fork();
  auto packets =
      apps::generate_arrivals(cargo[0], 0, cfg.horizon, stream, 0);
  sys.add_cargo_app(0, *cargo[0].profile, std::move(packets));
  const RunMetrics m = sys.run();

  // (1) The meter's TailCharge events reproduce its reported tail energy.
  EXPECT_GT(m.energy.tail_energy(), 0.0);
  EXPECT_NEAR(traced_tail_sum(buffer), m.energy.tail_energy(), 1e-9);

  // (2) Every executed kernel event produced exactly one EventFire.
  EXPECT_FALSE(buffer.overflowed());
  EXPECT_EQ(count_type(buffer, obs::EventType::kEventFire),
            sys.simulator().events_executed());

  // (3) The RRC story is present: every transmission promoted to DCH.
  EXPECT_GT(count_type(buffer, obs::EventType::kRrcTransition), 0u);
  EXPECT_GT(count_type(buffer, obs::EventType::kHeartbeatTx), 0u);

  // (4) The export passes the checker, RunSummary included.
  obs::RunSummary summary;
  summary.tail_energy_joules = m.energy.tail_energy();
  summary.network_energy_joules = m.network_energy();
  summary.transmissions = m.log.size();
  std::ostringstream out;
  obs::write_chrome_trace(out, buffer.events(), &m.log, &summary);
  const auto result = obs::check_chrome_trace(out.str());
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tail_charges,
            count_type(buffer, obs::EventType::kTailCharge));
  ASSERT_TRUE(result.reported_tail.has_value());
  EXPECT_NEAR(*result.reported_tail, m.energy.tail_energy(), 1e-12);

  // (5) Counters from both the scheduler and the service registries.
  EXPECT_GT(m.observed.counter("scheduler.slots"), 0u);
}

}  // namespace
}  // namespace etrain
