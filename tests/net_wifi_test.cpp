// Tests for Wi-Fi availability and the registry-built interface-selection
// policies ("baseline+wifi", "etrain+wifi", "select:...").
#include <gtest/gtest.h>

#include "baselines/baseline_policy.h"
#include "baselines/registry.h"
#include "exp/slotted_sim.h"
#include "net/wifi_availability.h"

namespace etrain::net {
namespace {

TEST(WifiAvailability, NoneAndAlways) {
  const auto none = WifiAvailability::none();
  EXPECT_FALSE(none.available(0.0));
  EXPECT_FALSE(none.available(1e6));
  EXPECT_EQ(none.next_available(0.0), kTimeInfinity);
  EXPECT_DOUBLE_EQ(none.coverage(100.0), 0.0);

  const auto always = WifiAvailability::always(1000.0);
  EXPECT_TRUE(always.available(0.0));
  EXPECT_TRUE(always.available(999.9));
  EXPECT_FALSE(always.available(1000.0));
  EXPECT_DOUBLE_EQ(always.coverage(1000.0), 1.0);
}

TEST(WifiAvailability, EpisodeBoundaries) {
  const WifiAvailability w({{100.0, 200.0}, {500.0, 700.0}});
  EXPECT_FALSE(w.available(99.9));
  EXPECT_TRUE(w.available(100.0));
  EXPECT_TRUE(w.available(199.9));
  EXPECT_FALSE(w.available(200.0));
  EXPECT_TRUE(w.available(600.0));
  EXPECT_FALSE(w.available(700.0));
}

TEST(WifiAvailability, NextAvailableAndCoveredUntil) {
  const WifiAvailability w({{100.0, 200.0}, {500.0, 700.0}});
  EXPECT_DOUBLE_EQ(w.next_available(0.0), 100.0);
  EXPECT_DOUBLE_EQ(w.next_available(150.0), 150.0);  // already covered
  EXPECT_DOUBLE_EQ(w.next_available(300.0), 500.0);
  EXPECT_EQ(w.next_available(800.0), kTimeInfinity);
  EXPECT_DOUBLE_EQ(w.covered_until(150.0), 200.0);
  EXPECT_DOUBLE_EQ(w.covered_until(300.0), 300.0);
}

TEST(WifiAvailability, CoverageFraction) {
  const WifiAvailability w({{0.0, 250.0}, {500.0, 750.0}});
  EXPECT_NEAR(w.coverage(1000.0), 0.5, 1e-12);
  // Horizon cutting through an episode.
  EXPECT_NEAR(w.coverage(600.0), 350.0 / 600.0, 1e-12);
}

TEST(WifiAvailability, RejectsMalformedEpisodes) {
  EXPECT_THROW(WifiAvailability({{10.0, 5.0}}), std::invalid_argument);
  EXPECT_THROW(WifiAvailability({{0.0, 10.0}, {5.0, 20.0}}),
               std::invalid_argument);
  EXPECT_THROW(WifiAvailability({{100.0, 200.0}, {0.0, 50.0}}),
               std::invalid_argument);
}

TEST(WifiPattern, CoverageApproximatesTarget) {
  WifiPatternConfig config;
  config.horizon = 400000.0;  // long horizon for tight statistics
  config.coverage = 0.4;
  config.episode_mean = 600.0;
  const auto w = generate_wifi_pattern(config, 3);
  EXPECT_NEAR(w.coverage(config.horizon), 0.4, 0.08);
}

TEST(WifiPattern, ExtremesAndValidation) {
  WifiPatternConfig config;
  config.coverage = 0.0;
  EXPECT_DOUBLE_EQ(generate_wifi_pattern(config, 1).coverage(7200.0), 0.0);
  config.coverage = 1.0;
  EXPECT_DOUBLE_EQ(generate_wifi_pattern(config, 1).coverage(7200.0), 1.0);
  config.coverage = 1.5;
  EXPECT_THROW(generate_wifi_pattern(config, 1), std::invalid_argument);
}

TEST(WifiPattern, Deterministic) {
  WifiPatternConfig config;
  const auto a = generate_wifi_pattern(config, 9);
  const auto b = generate_wifi_pattern(config, 9);
  ASSERT_EQ(a.episodes().size(), b.episodes().size());
  for (std::size_t i = 0; i < a.episodes().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.episodes()[i].start, b.episodes()[i].start);
  }
}

}  // namespace
}  // namespace etrain::net

namespace etrain::experiments {
namespace {

Scenario wifi_scenario(net::WifiAvailability wifi) {
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 1800.0;
  cfg.model = radio::PowerModel::PaperUmts3G();
  Scenario s = make_scenario(cfg);
  s.wifi = std::move(wifi);
  return s;
}

TEST(MultiInterface, WifiPacketsLandInWifiLog) {
  const auto s = wifi_scenario(net::WifiAvailability::always(1800.0));
  const auto policy = baselines::make_policy("baseline+wifi");
  const auto m = run_slotted(s, *policy);
  EXPECT_EQ(m.wifi_log.size(), s.packets.size());
  EXPECT_EQ(m.log.count(radio::TxKind::kData), 0u);
  EXPECT_GT(m.wifi_energy.network_energy(), 0.0);
  // Heartbeats stay cellular.
  EXPECT_EQ(m.log.count(radio::TxKind::kHeartbeat), s.trains.size());
}

TEST(MultiInterface, WifiMuchCheaperThanCellular) {
  const auto s = wifi_scenario(net::WifiAvailability::always(1800.0));
  baselines::BaselinePolicy cellular_only;
  const auto offload = baselines::make_policy("baseline+wifi");
  const auto mc = run_slotted(s, cellular_only);
  const auto mw = run_slotted(s, *offload);
  // Offloading the data leaves only heartbeat energy on cellular.
  EXPECT_LT(mw.network_energy(), 0.5 * mc.network_energy());
}

TEST(MultiInterface, ViaWifiIgnoredWhenUnavailable) {
  const auto s = wifi_scenario(net::WifiAvailability::none());
  const auto policy = baselines::make_policy("baseline+wifi");
  const auto m = run_slotted(s, *policy);
  EXPECT_EQ(m.wifi_log.size(), 0u);
  EXPECT_EQ(m.log.count(radio::TxKind::kData), s.packets.size());
}

TEST(MultiInterface, SelectSpecMatchesWifiAlias) {
  // "baseline+wifi" is an alias for "select:wifi" (with baseline fallback);
  // both must route every packet identically.
  const auto s = wifi_scenario(net::generate_wifi_pattern(
      net::WifiPatternConfig{.horizon = 1800.0, .coverage = 0.5,
                             .episode_mean = 300.0},
      4));
  const auto alias = baselines::make_policy("baseline+wifi");
  const auto select = baselines::make_policy("select:wifi;fallback=baseline");
  const auto ma = run_slotted(s, *alias);
  const auto ms = run_slotted(s, *select);
  EXPECT_EQ(ma.wifi_log.size(), ms.wifi_log.size());
  EXPECT_DOUBLE_EQ(ma.network_energy(), ms.network_energy());
}

TEST(MultiInterface, EtrainHybridDelivershEverything) {
  const auto s = wifi_scenario(net::generate_wifi_pattern(
      net::WifiPatternConfig{.horizon = 1800.0, .coverage = 0.5,
                             .episode_mean = 300.0},
      4));
  const auto policy = baselines::make_policy("etrain+wifi:theta=1,k=20");
  const auto m = run_slotted(s, *policy);
  EXPECT_EQ(m.outcomes.size(), s.packets.size());
  EXPECT_GT(m.wifi_log.size(), 0u);
  EXPECT_GT(m.log.count(radio::TxKind::kData), 0u);
  // Split adds up.
  EXPECT_EQ(m.wifi_log.size() + m.log.count(radio::TxKind::kData),
            s.packets.size());
}

TEST(MultiInterface, HybridBeatsCellularOnlyEtrain) {
  const auto s = wifi_scenario(net::generate_wifi_pattern(
      net::WifiPatternConfig{.horizon = 1800.0, .coverage = 0.5,
                             .episode_mean = 300.0},
      4));
  const auto cellular = baselines::make_policy("etrain:theta=1,k=20");
  const auto hybrid =
      baselines::make_policy("select:wifi;fallback=etrain:theta=1,k=20");
  const auto mc = run_slotted(s, *cellular);
  const auto mh = run_slotted(s, *hybrid);
  EXPECT_LT(mh.network_energy(), mc.network_energy());
  EXPECT_LE(mh.normalized_delay, mc.normalized_delay + 1e-9);
}

}  // namespace
}  // namespace etrain::experiments
