// PolicyRegistry: spec parsing, loud failures on typos, and the builtin
// registry + sweep factories the benches construct every policy through.
#include "core/policy_registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "baselines/registry.h"

namespace etrain {
namespace {

class DummyPolicy : public core::SchedulingPolicy {
 public:
  explicit DummyPolicy(double gain) : gain_(gain) {}
  std::vector<core::Selection> select(const core::SlotContext&,
                                      const core::WaitingQueues&) override {
    return {};
  }
  std::string name() const override { return "dummy"; }
  double gain() const { return gain_; }

 private:
  double gain_;
};

TEST(PolicyParamsTest, GetAndHasMarkKnobsConsumed) {
  core::PolicyParams params({{"theta", 2.0}, {"k", 3.0}, {"typo", 1.0}});
  EXPECT_DOUBLE_EQ(params.get("theta", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(params.get("absent", 9.5), 9.5);
  EXPECT_TRUE(params.has("k"));
  EXPECT_FALSE(params.has("absent"));
  const auto leftover = params.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover.front(), "typo");
}

TEST(PolicyRegistryTest, ParseSpecSplitsNameAndKnobs) {
  core::PolicyParams params;
  EXPECT_EQ(core::PolicyRegistry::parse_spec("etrain", &params), "etrain");
  EXPECT_TRUE(params.empty());

  core::PolicyParams knobs;
  EXPECT_EQ(core::PolicyRegistry::parse_spec("etrain:theta=2,k=3", &knobs),
            "etrain");
  EXPECT_DOUBLE_EQ(knobs.get("theta", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(knobs.get("k", 0.0), 3.0);
}

TEST(PolicyRegistryTest, ParseSpecRejectsMalformedInput) {
  core::PolicyParams params;
  EXPECT_THROW(core::PolicyRegistry::parse_spec("", &params),
               std::invalid_argument);
  EXPECT_THROW(core::PolicyRegistry::parse_spec("etrain:theta", &params),
               std::invalid_argument);
  EXPECT_THROW(core::PolicyRegistry::parse_spec("etrain:theta=abc", &params),
               std::invalid_argument);
  EXPECT_THROW(core::PolicyRegistry::parse_spec("etrain:=2", &params),
               std::invalid_argument);
  EXPECT_THROW(
      core::PolicyRegistry::parse_spec("etrain:theta=1,theta=2", &params),
      std::invalid_argument);
}

TEST(PolicyRegistryTest, MakeBuildsThroughTheFactoryWithKnobs) {
  core::PolicyRegistry registry;
  registry.register_policy(
      "dummy", "gain (test knob)", [](const core::PolicyParams& p) {
        return std::make_unique<DummyPolicy>(p.get("gain", 1.0));
      });
  ASSERT_TRUE(registry.contains("dummy"));

  const auto with_default = registry.make("dummy");
  EXPECT_DOUBLE_EQ(static_cast<DummyPolicy&>(*with_default).gain(), 1.0);
  const auto with_knob = registry.make("dummy:gain=2.5");
  EXPECT_DOUBLE_EQ(static_cast<DummyPolicy&>(*with_knob).gain(), 2.5);
}

TEST(PolicyRegistryTest, UnknownNameListsKnownPolicies) {
  core::PolicyRegistry registry;
  registry.register_policy("dummy", "gain", [](const core::PolicyParams& p) {
    return std::make_unique<DummyPolicy>(p.get("gain", 1.0));
  });
  try {
    registry.make("nope:x=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dummy"), std::string::npos);
  }
}

TEST(PolicyRegistryTest, TypoedKnobFailsLoudly) {
  core::PolicyRegistry registry;
  registry.register_policy("dummy", "gain", [](const core::PolicyParams& p) {
    return std::make_unique<DummyPolicy>(p.get("gain", 1.0));
  });
  try {
    registry.make("dummy:gian=2");  // typo never consumed by the factory
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("gian"), std::string::npos);
  }
}

TEST(PolicyRegistryTest, DuplicateRegistrationThrows) {
  core::PolicyRegistry registry;
  const auto factory = [](const core::PolicyParams& p) {
    return std::make_unique<DummyPolicy>(p.get("gain", 1.0));
  };
  registry.register_policy("dummy", "gain", factory);
  EXPECT_THROW(registry.register_policy("dummy", "gain", factory),
               std::invalid_argument);
}

TEST(BuiltinRegistryTest, ContainsEveryPaperPolicy) {
  const auto& registry = baselines::builtin_registry();
  for (const char* name :
       {"baseline", "etrain", "peres", "etime", "tailender", "oracle",
        "baseline+wifi", "etrain+wifi"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.help(name).empty()) << name;
  }
}

TEST(BuiltinRegistryTest, SpecsBuildNamedPolicies) {
  EXPECT_EQ(baselines::make_policy("baseline")->name(), "Baseline");
  const auto etrain = baselines::make_policy("etrain:theta=2,k=3");
  EXPECT_NE(etrain->name().find("eTrain"), std::string::npos);
  EXPECT_NE(baselines::make_policy("peres:omega=0.5"), nullptr);
  EXPECT_NE(baselines::make_policy("etime:v=2"), nullptr);
}

TEST(BuiltinRegistryTest, SweepFactoryVariesExactlyOneKnob) {
  const auto factory = baselines::sweep_factory("etrain", "theta");
  const auto low = factory(0.5);
  const auto high = factory(2.5);
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  // The knob value must survive the spec round-trip with full precision.
  const auto precise = baselines::sweep_factory("peres", "omega")(0.1);
  EXPECT_NE(precise, nullptr);
}

}  // namespace
}  // namespace etrain
