// Cross-policy property suite: invariants every scheduling policy must
// uphold when run through the slotted simulator, checked over a matrix of
// (policy, workload) combinations via parameterized tests.
#include <functional>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "baselines/baseline_policy.h"
#include "baselines/etime_policy.h"
#include "baselines/oracle_policy.h"
#include "baselines/peres_policy.h"
#include "baselines/tailender_policy.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"

namespace etrain::experiments {
namespace {

using PolicyFactory =
    std::function<std::unique_ptr<core::SchedulingPolicy>()>;

struct Case {
  std::string name;
  PolicyFactory make;
};

std::vector<Case> all_policies() {
  return {
      {"baseline", [] { return std::make_unique<baselines::BaselinePolicy>(); }},
      {"etrain",
       [] {
         return std::make_unique<core::EtrainScheduler>(
             core::EtrainConfig{.theta = 0.5, .k = 20});
       }},
      {"etrain_literal",
       [] {
         return std::make_unique<core::EtrainScheduler>(core::EtrainConfig{
             .theta = 0.5, .k = 20, .drip_defer_window = 0.0});
       }},
      {"etrain_unbounded",
       [] {
         return std::make_unique<core::EtrainScheduler>(core::EtrainConfig{
             .theta = 2.0, .k = core::EtrainConfig::unlimited_k()});
       }},
      {"peres",
       [] {
         return std::make_unique<baselines::PerESPolicy>(
             baselines::PerESConfig{.omega = 0.5});
       }},
      {"etime",
       [] {
         return std::make_unique<baselines::ETimePolicy>(
             baselines::ETimeConfig{.v = 1.0});
       }},
      {"tailender",
       [] { return std::make_unique<baselines::TailEnderPolicy>(); }},
      {"oracle", [] { return std::make_unique<baselines::OraclePolicy>(); }},
  };
}

class PolicyProperties : public ::testing::TestWithParam<Case> {
 protected:
  Scenario scenario() const {
    ScenarioConfig cfg;
    cfg.lambda = 0.10;
    cfg.horizon = 2400.0;
    cfg.model = radio::PowerModel::PaperSimulation();
    return make_scenario(cfg);
  }
};

TEST_P(PolicyProperties, EveryPacketSentExactlyOnce) {
  const Scenario s = scenario();
  const auto policy = GetParam().make();
  const auto m = run_slotted(s, *policy);
  EXPECT_EQ(m.outcomes.size(), s.packets.size());
  std::set<core::PacketId> ids;
  for (const auto& o : m.outcomes) ids.insert(o.id);
  EXPECT_EQ(ids.size(), s.packets.size());
}

TEST_P(PolicyProperties, Causality) {
  const Scenario s = scenario();
  const auto policy = GetParam().make();
  const auto m = run_slotted(s, *policy);
  for (const auto& o : m.outcomes) {
    ASSERT_GE(o.sent, o.arrival - 1e-9) << GetParam().name;
  }
}

TEST_P(PolicyProperties, RadioSerialized) {
  const Scenario s = scenario();
  const auto policy = GetParam().make();
  const auto m = run_slotted(s, *policy);
  for (std::size_t i = 1; i < m.log.size(); ++i) {
    ASSERT_GE(m.log[i].start, m.log[i - 1].end() - 1e-9) << GetParam().name;
  }
}

TEST_P(PolicyProperties, HeartbeatsNeverRescheduled) {
  // Every policy leaves heartbeats alone: the heartbeat count and nominal
  // times in the log match the train schedule (modulo link serialization
  // pushing a start later while the link is busy).
  const Scenario s = scenario();
  const auto policy = GetParam().make();
  const auto m = run_slotted(s, *policy);
  EXPECT_EQ(m.log.count(radio::TxKind::kHeartbeat), s.trains.size());
  std::size_t i = 0;
  for (const auto& tx : m.log.entries()) {
    if (tx.kind != radio::TxKind::kHeartbeat) continue;
    ASSERT_GE(tx.start, s.trains[i].time - 1e-9) << GetParam().name;
    ++i;
  }
}

TEST_P(PolicyProperties, EnergyDominatesIdealLowerBound) {
  // No schedule can beat: transmission energy of all bytes at the fastest
  // rate plus a single shared tail.
  const Scenario s = scenario();
  const auto policy = GetParam().make();
  const auto m = run_slotted(s, *policy);
  EXPECT_GT(m.network_energy(), s.model.full_tail_energy());
  // And no tail counting can exceed one full tail per transmission.
  EXPECT_LE(m.energy.tail_energy(),
            static_cast<double>(m.log.size()) * s.model.full_tail_energy() +
                1e-6);
}

TEST_P(PolicyProperties, ReportInternallyConsistent) {
  const Scenario s = scenario();
  const auto policy = GetParam().make();
  const auto m = run_slotted(s, *policy);
  EXPECT_NEAR(m.energy.network_energy(),
              m.energy.tx_energy + m.energy.setup_energy +
                  m.energy.tail_energy(),
              1e-6);
  EXPECT_EQ(m.energy.transmissions, m.log.size());
  EXPECT_LE(m.energy.full_tails + m.energy.truncated_tails, m.log.size());
  EXPECT_GE(m.violation_ratio, 0.0);
  EXPECT_LE(m.violation_ratio, 1.0);
}

TEST_P(PolicyProperties, DeterministicRerun) {
  const Scenario s = scenario();
  const auto p1 = GetParam().make();
  const auto p2 = GetParam().make();
  const auto a = run_slotted(s, *p1);
  const auto b = run_slotted(s, *p2);
  EXPECT_DOUBLE_EQ(a.network_energy(), b.network_energy());
  EXPECT_DOUBLE_EQ(a.normalized_delay, b.normalized_delay);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperties,
                         ::testing::ValuesIn(all_policies()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

// Energy ordering properties that define the paper's story.
TEST(PolicyOrdering, EtrainBeatsBaselineAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    ScenarioConfig cfg;
    cfg.lambda = 0.08;
    cfg.horizon = 3600.0;
    cfg.workload_seed = seed;
    cfg.model = radio::PowerModel::PaperSimulation();
    const Scenario s = make_scenario(cfg);
    baselines::BaselinePolicy baseline;
    core::EtrainScheduler etrain({.theta = 1.0, .k = 20});
    const auto mb = run_slotted(s, baseline);
    const auto me = run_slotted(s, etrain);
    EXPECT_LT(me.network_energy(), mb.network_energy()) << "seed " << seed;
  }
}

TEST(PolicyOrdering, OracleNearOrBelowEtrain) {
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 3600.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  const Scenario s = make_scenario(cfg);
  baselines::OraclePolicy oracle;
  core::EtrainScheduler etrain({.theta = 1.0, .k = 20});
  const auto mo = run_slotted(s, oracle);
  const auto me = run_slotted(s, etrain);
  // The clairvoyant schedule should not lose to the online one by much.
  EXPECT_LT(mo.network_energy(), me.network_energy() * 1.1);
}

TEST(PolicyOrdering, DeferWindowMonotoneInEnergy) {
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 3600.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  const Scenario s = make_scenario(cfg);
  double prev = 1e18;
  for (const double window : {0.0, 30.0, 60.0, 90.0}) {
    core::EtrainScheduler p(
        {.theta = 1.0, .k = 20, .drip_defer_window = window});
    const auto m = run_slotted(s, p);
    EXPECT_LE(m.network_energy(), prev * 1.02) << "window " << window;
    prev = m.network_energy();
  }
}

}  // namespace
}  // namespace etrain::experiments
