#include "net/synthetic_bandwidth.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace etrain::net {
namespace {

TEST(SyntheticBandwidth, DeterministicForSeed) {
  const SyntheticBandwidthConfig config;
  const auto a = generate_synthetic_trace(config, 99);
  const auto b = generate_synthetic_trace(config, 99);
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    ASSERT_DOUBLE_EQ(a.samples()[i], b.samples()[i]);
  }
}

TEST(SyntheticBandwidth, DifferentSeedsDiffer) {
  const SyntheticBandwidthConfig config;
  const auto a = generate_synthetic_trace(config, 1);
  const auto b = generate_synthetic_trace(config, 2);
  std::size_t equal = 0;
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    if (a.samples()[i] == b.samples()[i]) ++equal;
  }
  EXPECT_LT(equal, a.samples().size() / 100);
}

TEST(SyntheticBandwidth, LengthMatchesConfig) {
  SyntheticBandwidthConfig config;
  config.length = 600.0;
  const auto t = generate_synthetic_trace(config, 5);
  EXPECT_DOUBLE_EQ(t.length(), 600.0);
}

TEST(SyntheticBandwidth, RespectsEnvelope) {
  const SyntheticBandwidthConfig config;
  const auto t = generate_synthetic_trace(config, 7);
  EXPECT_GE(t.min(), config.floor_rate);
  EXPECT_LE(t.max(), config.ceiling_rate);
}

TEST(SyntheticBandwidth, MeanInPlausible3GUplinkRange) {
  // 2014-era TD-SCDMA/HSUPA uplink: tens to low hundreds of KB/s.
  const auto t = wuhan_trace();
  EXPECT_GT(t.mean(), 50.0e3);
  EXPECT_LT(t.mean(), 250.0e3);
}

TEST(SyntheticBandwidth, WuhanTraceIsTwoHours) {
  EXPECT_DOUBLE_EQ(wuhan_trace().length(), 7200.0);
}

TEST(SyntheticBandwidth, TemporallyCorrelated) {
  // Lag-1 autocorrelation must be high (AR(1) shadowing): bandwidth
  // prediction by EWMA is meaningful, as PerES/eTime assume.
  const auto t = wuhan_trace();
  const auto& s = t.samples();
  RunningStats all;
  for (const auto v : s) all.add(v);
  double num = 0.0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    num += (s[i] - all.mean()) * (s[i - 1] - all.mean());
  }
  const double denom = all.variance() * static_cast<double>(s.size() - 1);
  const double rho = num / denom;
  EXPECT_GT(rho, 0.8);
  EXPECT_LT(rho, 1.0);
}

TEST(SyntheticBandwidth, HasSubstantialVariability) {
  // A flat trace would make bandwidth-timing schedulers trivially optimal;
  // the real Wuhan recording is strongly time-varying.
  const auto t = wuhan_trace();
  RunningStats s;
  for (const auto v : t.samples()) s.add(v);
  EXPECT_GT(s.stddev() / s.mean(), 0.3);  // coefficient of variation
  EXPECT_GT(t.max() / t.min(), 5.0);
}

TEST(SyntheticBandwidth, ContainsDeepFades) {
  const SyntheticBandwidthConfig config;
  const auto t = wuhan_trace();
  std::size_t faded = 0;
  for (const auto v : t.samples()) {
    if (v <= config.fade_rate) ++faded;
  }
  EXPECT_GT(faded, 5u);                         // fades do occur
  EXPECT_LT(faded, t.samples().size() / 10);    // but are rare
}

}  // namespace
}  // namespace etrain::net
