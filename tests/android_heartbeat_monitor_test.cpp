#include "android/heartbeat_monitor.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "apps/heartbeat_spec.h"
#include "net/fault_plan.h"

namespace etrain::android {
namespace {

TEST(HeartbeatMonitor, UnknownAppHasNoState) {
  HeartbeatMonitor m;
  EXPECT_EQ(m.observed_beats(0), 0u);
  EXPECT_FALSE(m.last_beat(0).has_value());
  EXPECT_FALSE(m.estimated_cycle(0).has_value());
  EXPECT_FALSE(m.predict_next(0).has_value());
  EXPECT_FALSE(m.most_recent_beat().has_value());
}

TEST(HeartbeatMonitor, SingleBeatGivesNoCycle) {
  HeartbeatMonitor m;
  m.on_heartbeat(0, 100.0);
  EXPECT_EQ(m.observed_beats(0), 1u);
  EXPECT_DOUBLE_EQ(*m.last_beat(0), 100.0);
  EXPECT_FALSE(m.estimated_cycle(0).has_value());
}

TEST(HeartbeatMonitor, TwoBeatsEstablishCycle) {
  // Sec. III-C: "as soon as eTrain observes one heartbeat... it can
  // accurately predict when the subsequent heartbeats will be transmitted".
  HeartbeatMonitor m;
  m.on_heartbeat(0, 100.0);
  m.on_heartbeat(0, 370.0);
  EXPECT_DOUBLE_EQ(*m.estimated_cycle(0), 270.0);
  EXPECT_DOUBLE_EQ(*m.predict_next(0), 640.0);
}

TEST(HeartbeatMonitor, StableCycleUsesMedianAgainstJitter) {
  HeartbeatMonitor m;
  TimePoint t = 0.0;
  const double gaps[] = {300.0, 301.0, 299.5, 300.2, 299.8, 300.1};
  m.on_heartbeat(0, t);
  for (const double g : gaps) {
    t += g;
    m.on_heartbeat(0, t);
  }
  EXPECT_NEAR(*m.estimated_cycle(0), 300.0, 0.5);
}

TEST(HeartbeatMonitor, DoublingCycleTracksLastGap) {
  // NetEase discipline: 60 x6, 120 x6, ... The monitor predicts "last gap
  // repeats", correct 5 of every 6 beats and self-correcting afterwards.
  HeartbeatMonitor m;
  const auto spec = apps::netease_spec();
  TimePoint prev = 0.0;
  m.on_heartbeat(0, prev);
  int correct = 0, total = 0;
  for (int j = 1; j <= 24; ++j) {
    const TimePoint t = spec.beat_time(j, 0.0);
    if (const auto predicted = m.predict_next(0); predicted.has_value()) {
      ++total;
      if (std::abs(*predicted - t) < 1.0) ++correct;
    }
    m.on_heartbeat(0, t);
    prev = t;
  }
  EXPECT_GE(total, 20);
  // At least ~3/4 of predictions are exact despite the doubling steps.
  EXPECT_GE(static_cast<double>(correct) / total, 0.75);
}

TEST(HeartbeatMonitor, PredictDeparturesMergesApps) {
  HeartbeatMonitor m;
  m.on_heartbeat(0, 0.0);
  m.on_heartbeat(0, 300.0);  // cycle 300
  m.on_heartbeat(1, 10.0);
  m.on_heartbeat(1, 250.0);  // cycle 240
  const auto d = m.predict_departures(300.0, 1000.0);
  // App 0: 600, 900. App 1: 490, 730, 970.
  ASSERT_EQ(d.size(), 5u);
  EXPECT_DOUBLE_EQ(d[0], 490.0);
  EXPECT_DOUBLE_EQ(d[1], 600.0);
  EXPECT_DOUBLE_EQ(d[2], 730.0);
  EXPECT_DOUBLE_EQ(d[3], 900.0);
  EXPECT_DOUBLE_EQ(d[4], 970.0);
  // Sorted.
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_LT(d[i - 1], d[i]);
}

TEST(HeartbeatMonitor, PredictDeparturesExcludesFromBoundary) {
  HeartbeatMonitor m;
  m.on_heartbeat(0, 0.0);
  m.on_heartbeat(0, 100.0);
  const auto d = m.predict_departures(100.0, 300.0);
  ASSERT_EQ(d.size(), 2u);  // 200, 300 — not 100 itself
  EXPECT_DOUBLE_EQ(d[0], 200.0);
  EXPECT_DOUBLE_EQ(d[1], 300.0);
}

TEST(HeartbeatMonitor, TrainActivity) {
  HeartbeatMonitor m;
  EXPECT_FALSE(m.any_train_active(1000.0));
  m.on_heartbeat(2, 500.0);
  EXPECT_TRUE(m.any_train_active(600.0));
  EXPECT_TRUE(m.any_train_active(1400.0));            // within 900 s default
  EXPECT_FALSE(m.any_train_active(1401.0));           // stale
  EXPECT_TRUE(m.any_train_active(5000.0, 1e6));       // custom staleness
}

TEST(HeartbeatMonitor, MostRecentBeatAcrossApps) {
  HeartbeatMonitor m;
  m.on_heartbeat(0, 100.0);
  m.on_heartbeat(1, 250.0);
  m.on_heartbeat(0, 400.0);
  EXPECT_DOUBLE_EQ(*m.most_recent_beat(), 400.0);
}

TEST(HeartbeatMonitor, BackwardsTimeThrows) {
  HeartbeatMonitor m;
  m.on_heartbeat(0, 100.0);
  EXPECT_THROW(m.on_heartbeat(0, 50.0), std::invalid_argument);
}

TEST(HeartbeatMonitor, HistoryBounded) {
  HeartbeatMonitor m(4);
  for (int i = 0; i <= 100; ++i) m.on_heartbeat(0, i * 10.0);
  EXPECT_EQ(m.observed_beats(0), 5u);  // 4 gaps + the latest beat
  EXPECT_DOUBLE_EQ(*m.estimated_cycle(0), 10.0);
}

TEST(HeartbeatMonitor, TinyHistoryRejected) {
  EXPECT_THROW(HeartbeatMonitor(1), std::invalid_argument);
}

TEST(HeartbeatMonitor, ReEstimatesCycleUnderFaultJitter) {
  // A 300 s cycle with ~10% fault-injected departure jitter: individual
  // gaps violate the 5% stability band, but the deviations are unimodal —
  // the estimate must stay near the true cycle (median), not chase the
  // last noisy gap.
  net::FaultPlan plan;
  plan.seed = 99;
  plan.heartbeat_jitter_sigma = 30.0;
  HeartbeatMonitor m;
  TimePoint last = 0.0;
  for (int j = 0; j < 12; ++j) {
    const TimePoint t =
        std::max(last, 300.0 * j + plan.heartbeat_jitter(j));
    m.on_heartbeat(0, t);
    last = t;
  }
  ASSERT_TRUE(m.estimated_cycle(0).has_value());
  // A last-gap estimator is off by up to ~2 sigma of the *gap* noise
  // (sqrt(2)*30 ~ 42 s); the robust median stays within one sigma.
  EXPECT_NEAR(*m.estimated_cycle(0), 300.0, 30.0);
}

TEST(HeartbeatMonitor, JitterRobustnessDoesNotBreakDoublingDetection) {
  // After a stretch of 60 s gaps, a 120 s gap is a regime change (the
  // doubling discipline), not noise — the estimate must follow it.
  HeartbeatMonitor m;
  TimePoint t = 0.0;
  m.on_heartbeat(0, t);
  for (int j = 0; j < 6; ++j) m.on_heartbeat(0, t += 60.0);
  m.on_heartbeat(0, t += 120.0);
  ASSERT_TRUE(m.estimated_cycle(0).has_value());
  EXPECT_DOUBLE_EQ(*m.estimated_cycle(0), 120.0);
}

// Property: for every fixed-cycle app in the catalog, the monitor's
// prediction converges to the true cycle after a handful of beats.
class MonitorConvergence
    : public ::testing::TestWithParam<apps::HeartbeatSpec> {};

TEST_P(MonitorConvergence, PredictsCatalogCycles) {
  const auto spec = GetParam();
  HeartbeatMonitor m;
  for (int j = 0; j < 6; ++j) m.on_heartbeat(0, spec.beat_time(j, 50.0));
  ASSERT_TRUE(m.estimated_cycle(0).has_value());
  EXPECT_NEAR(*m.estimated_cycle(0), spec.cycle, 1e-9);
  EXPECT_NEAR(*m.predict_next(0), spec.beat_time(6, 50.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(FixedCatalog, MonitorConvergence,
                         ::testing::Values(apps::wechat_spec(),
                                           apps::whatsapp_spec(),
                                           apps::qq_spec(),
                                           apps::renren_spec(),
                                           apps::apns_spec()));

}  // namespace
}  // namespace etrain::android
