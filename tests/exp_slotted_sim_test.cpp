#include "exp/slotted_sim.h"

#include <set>

#include <gtest/gtest.h>

#include "baselines/baseline_policy.h"
#include "baselines/oracle_policy.h"
#include "common/parallel.h"
#include "core/etrain_scheduler.h"
#include "exp/sweeps.h"

namespace etrain::experiments {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 1800.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  return cfg;
}

TEST(Scenario, MakeScenarioShapes) {
  const Scenario s = make_scenario(small_config());
  EXPECT_DOUBLE_EQ(s.horizon, 1800.0);
  EXPECT_EQ(s.profiles.size(), 3u);
  EXPECT_FALSE(s.packets.empty());
  EXPECT_FALSE(s.trains.empty());
  // QQ + WeChat + WhatsApp over 1800 s: 6 + 7 + 8 beats (offsets 0/5/10).
  EXPECT_EQ(s.trains.size(), 6u + 7u + 8u);
  for (std::size_t i = 1; i < s.packets.size(); ++i) {
    EXPECT_LE(s.packets[i - 1].arrival, s.packets[i].arrival);
  }
}

TEST(Scenario, TrainCountControlsTrains) {
  auto cfg = small_config();
  cfg.train_count = 0;
  EXPECT_TRUE(make_scenario(cfg).trains.empty());
  cfg.train_count = 1;
  const auto s = make_scenario(cfg);
  for (const auto& e : s.trains) EXPECT_EQ(e.train, 0);
  cfg.train_count = 7;
  EXPECT_THROW(make_scenario(cfg), std::invalid_argument);
}

TEST(Scenario, SharedDeadlineOverride) {
  auto cfg = small_config();
  cfg.shared_deadline = 42.0;
  const auto s = make_scenario(cfg);
  for (const auto& p : s.packets) EXPECT_DOUBLE_EQ(p.deadline, 42.0);
}

TEST(SlottedSim, EveryPacketTransmittedExactlyOnce) {
  const Scenario s = make_scenario(small_config());
  core::EtrainScheduler policy({.theta = 0.2, .k = 20});
  const RunMetrics m = run_slotted(s, policy);
  EXPECT_EQ(m.outcomes.size(), s.packets.size());
  std::set<core::PacketId> ids;
  for (const auto& o : m.outcomes) ids.insert(o.id);
  EXPECT_EQ(ids.size(), s.packets.size());
  EXPECT_EQ(m.log.count(radio::TxKind::kData), s.packets.size());
  EXPECT_EQ(m.log.count(radio::TxKind::kHeartbeat), s.trains.size());
}

TEST(SlottedSim, CausalityNoPacketSentBeforeArrival) {
  const Scenario s = make_scenario(small_config());
  for (const auto run_policy : {0, 1}) {
    std::unique_ptr<core::SchedulingPolicy> policy;
    if (run_policy == 0) {
      policy = std::make_unique<baselines::BaselinePolicy>();
    } else {
      policy = std::make_unique<core::EtrainScheduler>(
          core::EtrainConfig{.theta = 0.5, .k = 20});
    }
    const RunMetrics m = run_slotted(s, *policy);
    for (const auto& o : m.outcomes) {
      EXPECT_GE(o.sent, o.arrival) << m.policy_name;
      EXPECT_GE(o.delay, 0.0) << m.policy_name;
    }
  }
}

TEST(SlottedSim, LogSerializedAndOrdered) {
  const Scenario s = make_scenario(small_config());
  core::EtrainScheduler policy({.theta = 0.2, .k = 20});
  const RunMetrics m = run_slotted(s, policy);
  for (std::size_t i = 1; i < m.log.size(); ++i) {
    EXPECT_GE(m.log[i].start, m.log[i - 1].end() - 1e-9);
  }
}

TEST(SlottedSim, BaselineHasNearZeroDelayAndNoViolations) {
  const Scenario s = make_scenario(small_config());
  baselines::BaselinePolicy policy;
  const RunMetrics m = run_slotted(s, policy);
  EXPECT_LT(m.normalized_delay, 2.0);
  EXPECT_DOUBLE_EQ(m.violation_ratio, 0.0);
}

TEST(SlottedSim, EtrainSavesEnergyVersusBaseline) {
  // The headline claim, in miniature.
  const Scenario s = make_scenario(small_config());
  baselines::BaselinePolicy baseline;
  core::EtrainScheduler etrain({.theta = 1.0, .k = 20});
  const auto mb = run_slotted(s, baseline);
  const auto me = run_slotted(s, etrain);
  EXPECT_LT(me.network_energy(), mb.network_energy() * 0.8);
  EXPECT_GT(me.normalized_delay, mb.normalized_delay);
}

TEST(SlottedSim, OracleNeverViolatesDeadlines) {
  const Scenario s = make_scenario(small_config());
  baselines::OraclePolicy oracle;
  const auto m = run_slotted(s, oracle);
  EXPECT_DOUBLE_EQ(m.violation_ratio, 0.0);
}

TEST(SlottedSim, DeterministicAcrossRuns) {
  const Scenario s = make_scenario(small_config());
  core::EtrainScheduler p1({.theta = 0.5, .k = 20});
  core::EtrainScheduler p2({.theta = 0.5, .k = 20});
  const auto a = run_slotted(s, p1);
  const auto b = run_slotted(s, p2);
  EXPECT_DOUBLE_EQ(a.network_energy(), b.network_energy());
  EXPECT_DOUBLE_EQ(a.normalized_delay, b.normalized_delay);
  EXPECT_EQ(a.log.size(), b.log.size());
}

TEST(SlottedSim, MetricsConsistentWithOutcomes) {
  const Scenario s = make_scenario(small_config());
  core::EtrainScheduler policy({.theta = 0.5, .k = 20});
  const auto m = run_slotted(s, policy);
  double delay_sum = 0.0;
  std::size_t violations = 0;
  for (const auto& o : m.outcomes) {
    delay_sum += o.delay;
    violations += o.violated ? 1 : 0;
  }
  EXPECT_NEAR(m.normalized_delay,
              delay_sum / static_cast<double>(m.outcomes.size()), 1e-9);
  EXPECT_NEAR(m.violation_ratio,
              static_cast<double>(violations) /
                  static_cast<double>(m.outcomes.size()),
              1e-9);
}

TEST(SlottedSim, EnergyBreakdownAddsUp) {
  const Scenario s = make_scenario(small_config());
  core::EtrainScheduler policy({.theta = 0.5, .k = 20});
  const auto m = run_slotted(s, policy);
  EXPECT_NEAR(m.network_energy(), m.data_energy() + m.heartbeat_energy() +
                                      m.energy.setup_energy,
              1e-6);
  EXPECT_GT(m.energy.idle_baseline, 0.0);
  EXPECT_NEAR(m.energy.total_energy(),
              m.energy.idle_baseline + m.network_energy(), 1e-6);
}

TEST(Sweeps, LinspaceStep) {
  const auto v = linspace_step(0.0, 3.0, 0.5);
  ASSERT_EQ(v.size(), 7u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 3.0);
  EXPECT_THROW(linspace_step(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Sweeps, SweepProducesOnePointPerParam) {
  const Scenario s = make_scenario(small_config());
  const auto frontier = sweep(
      s,
      [](double theta) {
        return std::make_unique<core::EtrainScheduler>(
            core::EtrainConfig{.theta = theta, .k = 20});
      },
      {0.0, 1.0, 2.0});
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_DOUBLE_EQ(frontier[0].param, 0.0);
  // Larger theta: less energy, more delay (the Fig. 7(a) tradeoff).
  EXPECT_GT(frontier[0].energy, frontier[2].energy);
  EXPECT_LT(frontier[0].delay, frontier[2].delay);
}

TEST(Sweeps, SerialAndParallelAreByteIdentical) {
  // ETRAIN_JOBS must not change a single bit of the frontier: the points
  // come back in params order with exactly the serial loop's values.
  const Scenario s = make_scenario(small_config());
  const auto factory = [](double theta) {
    return std::make_unique<core::EtrainScheduler>(
        core::EtrainConfig{.theta = theta, .k = 20});
  };
  const std::vector<double> thetas = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5};
  set_default_jobs(1);
  const auto serial = sweep(s, factory, thetas);
  set_default_jobs(4);
  const auto parallel = sweep(s, factory, thetas);
  set_default_jobs(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].param, parallel[i].param);
    EXPECT_EQ(serial[i].energy, parallel[i].energy);
    EXPECT_EQ(serial[i].delay, parallel[i].delay);
    EXPECT_EQ(serial[i].violation, parallel[i].violation);
  }
}

TEST(Sweeps, FrontierInterpolation) {
  const std::vector<EDPoint> frontier = {
      {1.0, 1000.0, 10.0, 0.0},
      {2.0, 600.0, 30.0, 0.1},
  };
  const auto mid = frontier_at_delay(frontier, 20.0);
  EXPECT_DOUBLE_EQ(mid.energy, 800.0);
  EXPECT_DOUBLE_EQ(mid.param, 1.5);
  EXPECT_NEAR(mid.violation, 0.05, 1e-12);
  // Clamping outside the range.
  EXPECT_DOUBLE_EQ(frontier_at_delay(frontier, 5.0).energy, 1000.0);
  EXPECT_DOUBLE_EQ(frontier_at_delay(frontier, 50.0).energy, 600.0);
  EXPECT_THROW(frontier_at_delay({}, 10.0), std::invalid_argument);
}

}  // namespace
}  // namespace etrain::experiments
