#include "common/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace etrain {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "etrain_csv";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
};

TEST_F(CsvTest, ParseSimpleLine) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[1], "b");
  EXPECT_EQ(row[2], "c");
}

TEST_F(CsvTest, ParseTrimsWhitespace) {
  const CsvRow row = parse_csv_line("  1 ,\t2.5 , text ");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "1");
  EXPECT_EQ(row[1], "2.5");
  EXPECT_EQ(row[2], "text");
}

TEST_F(CsvTest, ParseEmptyFields) {
  const CsvRow row = parse_csv_line("a,,c,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST_F(CsvTest, ParseSingleField) {
  const CsvRow row = parse_csv_line("lonely");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], "lonely");
}

TEST_F(CsvTest, RoundTripThroughWriter) {
  const std::string path = temp_path("roundtrip.csv");
  {
    CsvWriter w(path);
    w.write_comment("a comment");
    w.write_row({"time_s", "bytes_per_second"});
    w.write_row({"0", "120000"});
    w.write_row({"1", "95000.5"});
  }
  const auto rows = read_csv_file(path, /*skip_header=*/true);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "0");
  EXPECT_EQ(rows[0][1], "120000");
  EXPECT_EQ(rows[1][1], "95000.5");
}

TEST_F(CsvTest, HeaderKeptWhenNotSkipping) {
  const std::string path = temp_path("header.csv");
  {
    CsvWriter w(path);
    w.write_row({"h1", "h2"});
    w.write_row({"1", "2"});
  }
  const auto rows = read_csv_file(path, /*skip_header=*/false);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "h1");
}

TEST_F(CsvTest, SkipsBlankAndCommentLines) {
  const std::string path = temp_path("comments.csv");
  {
    std::ofstream out(path);
    out << "# top comment\n\n  \nvalue,1\n# mid comment\nvalue,2\n";
  }
  const auto rows = read_csv_file(path, /*skip_header=*/false);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "2");
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv", false),
               std::runtime_error);
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace etrain
