// LoRa-class link semantics end to end: radio heartbeats as a second
// train source (merged into the timetable by ScenarioBuilder), per-packet
// routing onto the link via "select:lora;...", ACK-timeout-paced
// retransmissions driven by the scenario's FaultPlan, and fallback to the
// cellular path when the link exhausts its retries.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "baselines/registry.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "obs/metrics.h"

namespace etrain::experiments {
namespace {

RunMetrics run(const Scenario& s, const std::string& spec,
               obs::Registry* registry = nullptr) {
  const auto policy = baselines::make_policy(spec);
  return run_slotted(s, *policy, obs::Observers{nullptr, registry});
}

TEST(ExpLoraTest, HeartbeatsJoinTheTimetableAsASecondTrainSource) {
  const Scenario s =
      ScenarioBuilder()
          .lambda(0.05)
          .horizon(600.0)
          .interfaces({"lora:sf=9,heartbeat_period=30,heartbeat_bytes=24"})
          .build();
  ASSERT_EQ(s.extra_interfaces.size(), 1u);
  EXPECT_EQ(s.extra_interfaces[0].radio.interface_name, "lora");
  EXPECT_EQ(s.extra_interfaces[0].radio.spec,
            "lora:sf=9,heartbeat_period=30,heartbeat_bytes=24");

  // The link beacons ride in the merged timetable on slot 2, 30 s apart,
  // without displacing the cellular trains.
  std::vector<TimePoint> beacons;
  bool has_cellular = false;
  for (const auto& e : s.trains) {
    if (e.interface == core::kInterfaceExtraBase) {
      EXPECT_EQ(e.bytes, 24);
      beacons.push_back(e.time);
    } else {
      EXPECT_EQ(e.interface, core::kInterfaceCellular);
      has_cellular = true;
    }
  }
  EXPECT_TRUE(has_cellular);
  ASSERT_GE(beacons.size(), 19u);  // ~600/30
  for (std::size_t i = 1; i < beacons.size(); ++i) {
    EXPECT_DOUBLE_EQ(beacons[i] - beacons[i - 1], 30.0);
  }
  EXPECT_TRUE(std::is_sorted(s.trains.begin(), s.trains.end(),
                             [](const auto& a, const auto& b) {
                               return a.time < b.time;
                             }));

  // Running the scenario lands those beacons in the LoRa log — and only
  // there: the cellular heartbeat count matches a lora-free twin.
  obs::Registry registry;
  const RunMetrics m = run(s, "baseline", &registry);
  ASSERT_EQ(m.extras.size(), 1u);
  std::size_t link_beats = 0;
  for (const auto& tx : m.extras[0].log.entries()) {
    if (tx.kind == radio::TxKind::kHeartbeat) ++link_beats;
  }
  EXPECT_EQ(link_beats, beacons.size());
  EXPECT_GT(m.extras[0].energy.network_energy(), 0.0);

  const Scenario plain =
      ScenarioBuilder().lambda(0.05).horizon(600.0).build();
  const RunMetrics m0 = run(plain, "baseline");
  const auto cellular_beats = [](const RunMetrics& r) {
    std::size_t n = 0;
    for (const auto& tx : r.log.entries()) {
      if (tx.kind == radio::TxKind::kHeartbeat) ++n;
    }
    return n;
  };
  EXPECT_EQ(cellular_beats(m), cellular_beats(m0));
}

TEST(ExpLoraTest, SelectRoutesCargoOntoTheHotLink) {
  // A wide rx window keeps the link hot most of the time, so the select
  // policy can actually route cargo onto it.
  const Scenario s =
      ScenarioBuilder()
          .lambda(0.05)
          .horizon(1200.0)
          .interfaces({"lora:sf=9,heartbeat_period=10,rx_window=8"})
          .build();
  const RunMetrics m =
      run(s, "select:lora;fallback=etrain:theta=1,k=20");
  ASSERT_EQ(m.extras.size(), 1u);
  std::size_t link_data = 0;
  for (const auto& tx : m.extras[0].log.entries()) {
    if (tx.kind == radio::TxKind::kData) {
      ++link_data;
      EXPECT_GE(tx.packet_id, 0);
    }
  }
  EXPECT_GT(link_data, 0u);
  // Every packet is delivered exactly once, wherever it was routed.
  EXPECT_EQ(m.outcomes.size(), s.packets.size());
  std::set<core::PacketId> ids;
  for (const auto& o : m.outcomes) ids.insert(o.id);
  EXPECT_EQ(ids.size(), m.outcomes.size());
}

TEST(ExpLoraTest, AckTimeoutPacesRetransmissions) {
  const Scenario s =
      ScenarioBuilder()
          .lambda(0.05)
          .horizon(1200.0)
          .interfaces({"lora:sf=9,heartbeat_period=10,rx_window=8,"
                       "ack_timeout=3"})
          .loss(0.5)
          .fault_seed(77)
          .build();
  obs::Registry registry;
  const RunMetrics m =
      run(s, "select:lora;fallback=etrain:theta=1,k=20", &registry);
  ASSERT_EQ(m.extras.size(), 1u);

  // Under 50 % frame loss the link must have retransmitted; a retry can
  // only start once the 3 s ACK window on the failed frame has closed.
  std::size_t retransmissions = 0;
  const auto& entries = m.extras[0].log.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& tx = entries[i];
    if (tx.kind != radio::TxKind::kData || tx.attempt <= 1) continue;
    ++retransmissions;
    ASSERT_GT(i, 0u);
    const auto& prev = entries[i - 1];
    EXPECT_EQ(prev.packet_id, tx.packet_id);
    EXPECT_TRUE(prev.failed);
    EXPECT_EQ(prev.attempt, tx.attempt - 1);
    EXPECT_GE(tx.start, prev.end() + 3.0 - 1e-9);
  }
  EXPECT_GT(retransmissions, 0u);
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter("run.tx_retries"), 0u);
  EXPECT_GT(snap.counter("run.tx_failures"), 0u);

  // Same seed, same draws: the fault path is deterministic.
  const RunMetrics m2 = run(s, "select:lora;fallback=etrain:theta=1,k=20");
  ASSERT_EQ(m2.extras[0].log.entries().size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(m2.extras[0].log.entries()[i].start, entries[i].start);
    EXPECT_EQ(m2.extras[0].log.entries()[i].failed, entries[i].failed);
  }
}

TEST(ExpLoraTest, RetryExhaustionFallsBackToCellular) {
  // Total loss with a one-retry budget: every LoRa chain gives up, the
  // packet rejoins its queue, and the cellular path (fault-free here by
  // the horizon flush at the latest) delivers it.
  const Scenario s =
      ScenarioBuilder()
          .lambda(0.05)
          .horizon(600.0)
          .interfaces({"lora:sf=9,heartbeat_period=10,rx_window=8,"
                       "max_retries=1,ack_timeout=1"})
          .loss(1.0)
          .fault_seed(5)
          .build();
  obs::Registry registry;
  const RunMetrics m =
      run(s, "select:lora;fallback=etrain:theta=1,k=20", &registry);
  ASSERT_EQ(m.extras.size(), 1u);

  std::size_t link_chains = 0;
  for (const auto& tx : m.extras[0].log.entries()) {
    if (tx.kind != radio::TxKind::kData) continue;
    EXPECT_TRUE(tx.failed);           // loss 1.0: no frame ever lands
    EXPECT_LE(tx.attempt, 2);         // 1 try + 1 retransmission
    if (tx.attempt == 1) ++link_chains;
  }
  EXPECT_GT(link_chains, 0u);
  EXPECT_GT(registry.snapshot().counter("run.packets_recovered"), 0u);

  // Despite the dead link every packet is eventually delivered, once.
  EXPECT_EQ(m.outcomes.size(), s.packets.size());
  std::set<core::PacketId> ids;
  for (const auto& o : m.outcomes) ids.insert(o.id);
  EXPECT_EQ(ids.size(), m.outcomes.size());
}

}  // namespace
}  // namespace etrain::experiments
