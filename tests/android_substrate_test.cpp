// Tests for the Android-like substrate: broadcast bus, alarm manager, and
// Xposed hook registry.
#include <gtest/gtest.h>

#include "android/alarm_manager.h"
#include "android/broadcast_bus.h"
#include "android/xposed.h"

namespace etrain::android {
namespace {

// --- Intent ---

TEST(Intent, TypedExtras) {
  Intent i("test.ACTION");
  i.put("count", std::int64_t{42});
  i.put("ratio", 2.5);
  i.put("name", std::string("weibo"));
  EXPECT_EQ(i.action(), "test.ACTION");
  EXPECT_EQ(i.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(*i.get_double("ratio"), 2.5);
  EXPECT_EQ(*i.get_string("name"), "weibo");
  EXPECT_FALSE(i.get_int("missing").has_value());
  EXPECT_FALSE(i.get_double("count").has_value());  // wrong type map
}

// --- BroadcastBus ---

TEST(BroadcastBus, DeliversToMatchingReceiversAsync) {
  sim::Simulator simulator;
  BroadcastBus bus(simulator);
  int received = 0;
  bus.register_receiver("a", [&](const Intent&) { ++received; });
  bus.register_receiver("a", [&](const Intent&) { ++received; });
  bus.register_receiver("b", [&](const Intent&) { received += 100; });

  simulator.schedule_at(1.0, [&] {
    bus.send_broadcast(Intent("a"));
    // Asynchronous: nothing delivered inline.
    EXPECT_EQ(received, 0);
  });
  simulator.run_until(2.0);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(bus.broadcasts_sent(), 1u);
}

TEST(BroadcastBus, NoReceiversIsFine) {
  sim::Simulator simulator;
  BroadcastBus bus(simulator);
  simulator.schedule_at(0.0, [&] { bus.send_broadcast(Intent("nobody")); });
  EXPECT_NO_THROW(simulator.run_until(1.0));
}

TEST(BroadcastBus, UnregisterStopsDelivery) {
  sim::Simulator simulator;
  BroadcastBus bus(simulator);
  int received = 0;
  const ReceiverId id =
      bus.register_receiver("a", [&](const Intent&) { ++received; });
  EXPECT_EQ(bus.receiver_count("a"), 1u);
  EXPECT_TRUE(bus.unregister_receiver(id));
  EXPECT_FALSE(bus.unregister_receiver(id));
  simulator.schedule_at(0.0, [&] { bus.send_broadcast(Intent("a")); });
  simulator.run_until(1.0);
  EXPECT_EQ(received, 0);
}

TEST(BroadcastBus, LateRegistrationMissesEarlierBroadcast) {
  sim::Simulator simulator;
  BroadcastBus bus(simulator);
  int received = 0;
  simulator.schedule_at(0.0, [&] { bus.send_broadcast(Intent("a")); });
  simulator.schedule_at(0.0005, [&] {
    bus.register_receiver("a", [&](const Intent&) { ++received; });
  });
  simulator.run_until(1.0);
  EXPECT_EQ(received, 0);
}

TEST(BroadcastBus, ExtrasSurviveDelivery) {
  sim::Simulator simulator;
  BroadcastBus bus(simulator);
  std::int64_t seen = -1;
  bus.register_receiver("a", [&](const Intent& i) {
    seen = i.get_int("packet").value_or(-2);
  });
  simulator.schedule_at(0.0, [&] {
    bus.send_broadcast(Intent("a").put("packet", std::int64_t{123}));
  });
  simulator.run_until(1.0);
  EXPECT_EQ(seen, 123);
}

// --- AlarmManager ---

TEST(AlarmManager, OneShotFiresOnce) {
  sim::Simulator simulator;
  AlarmManager alarms(simulator);
  int fired = 0;
  alarms.set_exact(5.0, [&] { ++fired; });
  simulator.run_until(100.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(alarms.active_alarms(), 0u);
}

TEST(AlarmManager, RepeatingFiresPeriodically) {
  sim::Simulator simulator;
  AlarmManager alarms(simulator);
  std::vector<TimePoint> fires;
  alarms.set_repeating(10.0, 30.0, [&] { fires.push_back(simulator.now()); });
  simulator.run_until(100.0);
  ASSERT_EQ(fires.size(), 4u);  // 10, 40, 70, 100
  EXPECT_DOUBLE_EQ(fires[0], 10.0);
  EXPECT_DOUBLE_EQ(fires[3], 100.0);
}

TEST(AlarmManager, CancelStopsRepeating) {
  sim::Simulator simulator;
  AlarmManager alarms(simulator);
  int fired = 0;
  const AlarmId id = alarms.set_repeating(10.0, 10.0, [&] { ++fired; });
  simulator.run_until(25.0);
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(alarms.cancel(id));
  simulator.run_until(100.0);
  EXPECT_EQ(fired, 2);
}

TEST(AlarmManager, CancelBeforeFirstFire) {
  sim::Simulator simulator;
  AlarmManager alarms(simulator);
  int fired = 0;
  const AlarmId id = alarms.set_exact(5.0, [&] { ++fired; });
  EXPECT_TRUE(alarms.cancel(id));
  EXPECT_FALSE(alarms.cancel(id));
  simulator.run_until(100.0);
  EXPECT_EQ(fired, 0);
}

TEST(AlarmManager, CallbackCanReArm) {
  // The train-app pattern: a one-shot alarm whose callback arms the next
  // beat (needed for doubling cycles).
  sim::Simulator simulator;
  AlarmManager alarms(simulator);
  std::vector<TimePoint> fires;
  std::function<void()> beat = [&] {
    fires.push_back(simulator.now());
    if (fires.size() < 3) {
      alarms.set_exact(simulator.now() + 60.0 * fires.size(), beat);
    }
  };
  alarms.set_exact(0.0, beat);
  simulator.run_until(1000.0);
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_DOUBLE_EQ(fires[1], 60.0);
  EXPECT_DOUBLE_EQ(fires[2], 180.0);
}

TEST(AlarmManager, NonPositiveIntervalThrows) {
  sim::Simulator simulator;
  AlarmManager alarms(simulator);
  EXPECT_THROW(alarms.set_repeating(0.0, 0.0, [] {}), std::invalid_argument);
}

// --- XposedRegistry ---

TEST(Xposed, HookObservesInvocation) {
  XposedRegistry registry;
  std::vector<TimePoint> observed;
  registry.hook_method("com.wechat/Daemon", "sendHeartbeat",
                       [&](const MethodCall& c) { observed.push_back(c.time); });
  MethodCall call;
  call.class_name = "com.wechat/Daemon";
  call.method_name = "sendHeartbeat";
  call.time = 42.0;
  EXPECT_EQ(registry.invoke(call), 1u);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_DOUBLE_EQ(observed[0], 42.0);
}

TEST(Xposed, UnhookedMethodUnobserved) {
  XposedRegistry registry;
  int observed = 0;
  registry.hook_method("A", "m", [&](const MethodCall&) { ++observed; });
  MethodCall other;
  other.class_name = "B";
  other.method_name = "m";
  EXPECT_EQ(registry.invoke(other), 0u);
  EXPECT_EQ(observed, 0);
}

TEST(Xposed, MultipleHooksRunInOrder) {
  XposedRegistry registry;
  std::vector<int> order;
  registry.hook_method("A", "m", [&](const MethodCall&) { order.push_back(1); });
  registry.hook_method("A", "m", [&](const MethodCall&) { order.push_back(2); });
  MethodCall call;
  call.class_name = "A";
  call.method_name = "m";
  EXPECT_EQ(registry.invoke(call), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(registry.hook_count(), 2u);
}

TEST(Xposed, UnhookRemoves) {
  XposedRegistry registry;
  int observed = 0;
  const HookId id =
      registry.hook_method("A", "m", [&](const MethodCall&) { ++observed; });
  EXPECT_TRUE(registry.unhook(id));
  EXPECT_FALSE(registry.unhook(id));
  MethodCall call;
  call.class_name = "A";
  call.method_name = "m";
  registry.invoke(call);
  EXPECT_EQ(observed, 0);
}

}  // namespace
}  // namespace etrain::android
