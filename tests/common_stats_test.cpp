#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace etrain {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squared dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10 + i * 0.01;
    (i % 3 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Ewma, FirstSampleSetsValue) {
  Ewma e(0.2);
  EXPECT_TRUE(e.empty());
  EXPECT_DOUBLE_EQ(e.value_or(-1.0), -1.0);
  e.add(10.0);
  EXPECT_FALSE(e.empty());
  EXPECT_DOUBLE_EQ(e.value_or(-1.0), 10.0);
}

TEST(Ewma, Smooths) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 7.5);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.add(3.0);
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value_or(0.0), 8.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // Sorted: 1,2,3,4. p75 rank = 2.25 -> 3 + 0.25*(4-3) = 3.25.
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 75.0), 3.25);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 9.0, 1.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bucket 0
  h.add(9.99);   // bucket 4
  h.add(-3.0);   // clamped to bucket 0
  h.add(100.0);  // clamped to bucket 4
  h.add(5.0);    // bucket 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.count(1), 0u);
}

TEST(Histogram, ModeMidpoint) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 5; ++i) h.add(42.0);
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.mode_midpoint(), 45.0);
}

}  // namespace
}  // namespace etrain
