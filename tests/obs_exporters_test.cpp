#include "obs/exporters.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_check.h"
#include "radio/power_model.h"
#include "radio/transmission_log.h"

namespace etrain::obs {
namespace {

std::string export_to_string(const std::vector<TraceEvent>& events,
                             const radio::TransmissionLog* log = nullptr,
                             const RunSummary* summary = nullptr) {
  std::ostringstream out;
  write_chrome_trace(out, events, log, summary);
  return out.str();
}

// Golden export of a minimal trace: the exact bytes are part of the
// contract (external tools parse this), so a formatting change must be a
// conscious decision here.
TEST(ChromeTrace, GoldenMinimalExport) {
  const std::vector<TraceEvent> events = {
      TraceEvent::gate_open(1.0, true, 0.5, 0.25),
  };
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"etrain\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"scheduler\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"radio\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,"
      "\"args\":{\"name\":\"heartbeats\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":4,"
      "\"args\":{\"name\":\"kernel\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":5,"
      "\"args\":{\"name\":\"meter\"}},"
      "{\"name\":\"GateOpen\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,"
      "\"ts\":1000000,\"args\":{\"heartbeat\":1,\"P\":0.5,\"theta\":0.25}}"
      "]}\n";
  EXPECT_EQ(export_to_string(events), expected);
}

TEST(ChromeTrace, EventsSortedAndSpansInterleaved) {
  // Recorded out of chronological order (the meter bills tails at the end
  // of a run): the export must come out sorted, with transmission spans
  // merged chronologically rather than appended as a block.
  std::vector<TraceEvent> events = {
      TraceEvent::tail_charge(30.0, 0, 1.5, 12.0),
      TraceEvent::event_fire(2.0, 7),
      TraceEvent::slot_begin(10.0, 3, 0.125),
  };
  radio::TransmissionLog log;
  radio::Transmission hb;
  hb.start = 5.0;
  hb.duration = 0.5;
  hb.bytes = 300;
  hb.kind = radio::TxKind::kHeartbeat;
  log.add(hb);
  radio::Transmission data;
  data.start = 20.0;
  data.setup = 1.5;
  data.duration = 2.0;
  data.bytes = 4000;
  data.kind = radio::TxKind::kData;
  data.app_id = 1;
  data.packet_id = 42;
  log.add(data);

  const std::string json = export_to_string(events, &log);
  const auto pos = [&json](const std::string& needle) {
    const auto p = json.find(needle);
    EXPECT_NE(p, std::string::npos) << needle;
    return p;
  };
  const auto fire = pos("\"EventFire\"");
  const auto heartbeat = pos("\"heartbeat_tx\"");
  const auto slot = pos("\"SlotBegin\"");
  const auto span = pos("\"data_tx\"");
  const auto tail = pos("\"TailCharge\"");
  EXPECT_LT(fire, heartbeat);
  EXPECT_LT(heartbeat, slot);
  EXPECT_LT(slot, span);
  EXPECT_LT(span, tail);
  // The data span: ts at 20 s, duration = setup + data = 3.5 s.
  pos("\"ts\":20000000,\"dur\":3500000");
  pos("\"bytes\":4000,\"app\":1,\"packet\":42,\"setup_s\":1.5");
  // And the whole thing satisfies the checker.
  const auto result = check_chrome_trace(json);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tail_charges, 1u);
  EXPECT_DOUBLE_EQ(result.tail_charge_sum, 1.5);
}

TEST(ChromeTrace, SummaryAgreesWithTailCharges) {
  const std::vector<TraceEvent> events = {
      TraceEvent::tail_charge(10.0, 0, 1.25, 17.5),
      TraceEvent::tail_charge(40.0, 1, 2.5, 17.5),
  };
  RunSummary summary;
  summary.tail_energy_joules = 3.75;
  summary.network_energy_joules = 9.0;
  summary.transmissions = 2;
  const std::string json = export_to_string(events, nullptr, &summary);
  const auto result = check_chrome_trace(json);
  EXPECT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(result.reported_tail.has_value());
  EXPECT_DOUBLE_EQ(*result.reported_tail, 3.75);
  EXPECT_DOUBLE_EQ(result.tail_charge_sum, 3.75);
}

TEST(ChromeTrace, CheckerRejectsMismatchedSummary) {
  const std::vector<TraceEvent> events = {
      TraceEvent::tail_charge(10.0, 0, 1.0, 5.0),
  };
  RunSummary summary;
  summary.tail_energy_joules = 2.0;  // off by 1 J, way past 1e-9
  const std::string json = export_to_string(events, nullptr, &summary);
  const auto result = check_chrome_trace(json);
  EXPECT_FALSE(result.ok);
}

TEST(ChromeTrace, CheckerRejectsCorruptAndNonMonotoneInput) {
  EXPECT_FALSE(check_chrome_trace("").ok);
  EXPECT_FALSE(check_chrome_trace("not json").ok);
  EXPECT_FALSE(check_chrome_trace("{\"traceEvents\":{}}").ok);
  EXPECT_FALSE(check_chrome_trace("[1,2,3]").ok);
  // A truncated file (the classic crash artifact).
  const std::string good = export_to_string({TraceEvent::event_fire(1.0, 1)});
  EXPECT_FALSE(check_chrome_trace(good.substr(0, good.size() / 2)).ok);
  // Timestamps going backwards in file order.
  const std::string non_monotone =
      "{\"traceEvents\":["
      "{\"name\":\"A\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":2000},"
      "{\"name\":\"B\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":1000}]}";
  const auto result = check_chrome_trace(non_monotone);
  EXPECT_FALSE(result.ok);
  // A missing required field.
  EXPECT_FALSE(check_chrome_trace("{\"traceEvents\":[{\"name\":\"A\"}]}").ok);
}

TEST(PowerTimeline, ReconstructsStatesAndPower) {
  radio::PowerModel model = radio::PowerModel::PaperUmts3G();
  radio::TransmissionLog log;
  radio::Transmission tx;
  tx.start = 1.0;
  tx.duration = 1.0;
  tx.bytes = 1000;
  log.add(tx);

  std::ostringstream out;
  write_power_timeline(out, log, model, 30.0, 1.0);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "time_s,power_W,rrc_state,transmitting");
  std::vector<std::string> rows;
  while (std::getline(in, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 31u);  // t = 0..30 inclusive
  // t=0: before any transmission — idle.
  EXPECT_NE(rows[0].find("IDLE,0"), std::string::npos) << rows[0];
  // t=1: data phase [1, 2) — DCH and transmitting.
  EXPECT_NE(rows[1].find("DCH,1"), std::string::npos) << rows[1];
  // t=4: inside the 10 s DCH tail.
  EXPECT_NE(rows[4].find("DCH,0"), std::string::npos) << rows[4];
  // t=14: DCH tail over (ends at 12), inside the FACH tail (ends at 19.5).
  EXPECT_NE(rows[14].find("FACH,0"), std::string::npos) << rows[14];
  // t=25: all tails over — idle again.
  EXPECT_NE(rows[25].find("IDLE,0"), std::string::npos) << rows[25];
}

TEST(PowerTimeline, RejectsNonPositiveStep) {
  radio::TransmissionLog log;
  std::ostringstream out;
  EXPECT_THROW(
      write_power_timeline(out, log, radio::PowerModel::PaperUmts3G(), 1.0,
                           0.0),
      std::invalid_argument);
}

TEST(StateAt, MatchesTailBoundaries) {
  const radio::PowerModel model = radio::PowerModel::PaperUmts3G();
  radio::TransmissionLog log;
  radio::Transmission tx;
  tx.start = 0.0;
  tx.duration = 2.0;
  log.add(tx);
  EXPECT_EQ(state_at(log, model, 1.0), radio::RrcState::kDch);
  EXPECT_EQ(state_at(log, model, 2.0 + model.dch_tail * 0.5),
            radio::RrcState::kDch);
  EXPECT_EQ(state_at(log, model, 2.0 + model.dch_tail + 0.1),
            radio::RrcState::kFach);
  EXPECT_EQ(state_at(log, model, 2.0 + model.tail_time() + 0.1),
            radio::RrcState::kIdle);
}

}  // namespace
}  // namespace etrain::obs
