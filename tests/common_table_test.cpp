#include "common/table.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace etrain {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string out = t.render();
  // Row renders with empty cells rather than crashing.
  EXPECT_NE(out.find("| only "), std::string::npos);
}

TEST(Table, ColumnWidthFollowsWidestCell) {
  Table t({"x"});
  t.add_row({"wide-cell-content"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| wide-cell-content |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::integer(-7), "-7");
}

TEST(FormatTime, HmsRendering) {
  EXPECT_EQ(format_time(0.0), "0:00:00.000");
  EXPECT_EQ(format_time(3661.5), "1:01:01.500");
  EXPECT_EQ(format_time(59.999), "0:00:59.999");
}

TEST(FormatTime, NegativeAndInfinite) {
  EXPECT_EQ(format_time(-1.25), "-0:00:01.250");
  EXPECT_EQ(format_time(kTimeInfinity), "+inf");
}

TEST(FormatJoules, TwoDecimals) {
  EXPECT_EQ(format_joules(10.375), "10.38 J");
  EXPECT_EQ(format_joules(0.0), "0.00 J");
}

TEST(UnitHelpers, Conversions) {
  EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.5), 5400.0);
  EXPECT_DOUBLE_EQ(milliwatts(700.0), 0.7);
  EXPECT_EQ(kilobytes(5.0), 5000);
}

TEST(UnitHelpers, ApproxEqual) {
  EXPECT_TRUE(time_approx_equal(1.0, 1.0));
  EXPECT_TRUE(time_approx_equal(1.0, 1.0 + 5e-7));
  EXPECT_FALSE(time_approx_equal(1.0, 1.001));
  EXPECT_TRUE(time_approx_equal(100.0, 100.4, 0.5));
}

}  // namespace
}  // namespace etrain
