// Tests for the radio::ModelRegistry: preset equivalence with the legacy
// PowerModel factories, knob overrides and their provenance marking,
// unknown-name/flag/knob rejection, and the lora/lte_cdrx model payloads.
#include <gtest/gtest.h>

#include <stdexcept>

#include "radio/model_registry.h"
#include "radio/power_model.h"

namespace etrain::radio {
namespace {

void expect_same_model(const PowerModel& a, const PowerModel& b) {
  EXPECT_EQ(a.name, b.name);
  // Bit-identical, not merely close: the registry is the factory behind the
  // legacy presets, and existing reports' bytes depend on exact equality.
  EXPECT_EQ(a.idle_power, b.idle_power);
  EXPECT_EQ(a.dch_extra_power, b.dch_extra_power);
  EXPECT_EQ(a.fach_extra_power, b.fach_extra_power);
  EXPECT_EQ(a.tx_extra_power, b.tx_extra_power);
  EXPECT_EQ(a.dch_tail, b.dch_tail);
  EXPECT_EQ(a.fach_tail, b.fach_tail);
  EXPECT_EQ(a.idle_to_dch_delay, b.idle_to_dch_delay);
  EXPECT_EQ(a.fach_to_dch_delay, b.fach_to_dch_delay);
  EXPECT_EQ(a.extra_tail.size(), b.extra_tail.size());
}

TEST(ModelRegistry, PresetsMatchLegacyFactories) {
  expect_same_model(make_radio_model("3g").power, PowerModel::PaperUmts3G());
  expect_same_model(make_radio_model("3g:paper").power,
                    PowerModel::PaperUmts3G());
  expect_same_model(make_radio_model("3g:sim").power,
                    PowerModel::PaperSimulation());
  expect_same_model(make_radio_model("3g:realistic").power,
                    PowerModel::Realistic3G());
  expect_same_model(make_radio_model("3g:fast_dormancy").power,
                    PowerModel::FastDormancy3G());
  expect_same_model(make_radio_model("wifi").power, PowerModel::WifiPsm());
  expect_same_model(make_radio_model("lte_drx").power, PowerModel::LteDrx());
}

TEST(ModelRegistry, RecordsSpecAndInterfaceName) {
  const RadioModel m = make_radio_model("3g:sim");
  EXPECT_EQ(m.spec, "3g:sim");
  EXPECT_EQ(m.interface_name, "cellular");
  EXPECT_EQ(make_radio_model("wifi").interface_name, "wifi");
  EXPECT_EQ(make_radio_model("lte_cdrx").interface_name, "lte");
  EXPECT_EQ(make_radio_model("lora").interface_name, "lora");
}

TEST(ModelRegistry, KnobOverridesMarkTheName) {
  const RadioModel m = make_radio_model("3g:paper,dch_tail=6,dch_mw=650");
  EXPECT_EQ(m.power.name, "PaperUmts3G*");
  EXPECT_DOUBLE_EQ(m.power.dch_tail, 6.0);
  EXPECT_DOUBLE_EQ(m.power.dch_extra_power, 0.65);
  // Untouched fields keep the preset's exact values.
  EXPECT_EQ(m.power.fach_extra_power,
            PowerModel::PaperUmts3G().fach_extra_power);
}

TEST(ModelRegistry, UntouchedPresetStaysBitIdentical) {
  // A no-override spec must not round-trip any field (ULP drift would
  // silently change every existing report).
  const PowerModel via_registry = make_radio_model("3g:sim").power;
  PowerModel expected;
  expected.dch_tail = 2.5;
  expected.fach_tail = 7.5;
  EXPECT_EQ(via_registry.idle_power, expected.idle_power);
  EXPECT_EQ(via_registry.dch_extra_power, expected.dch_extra_power);
  EXPECT_EQ(via_registry.fach_extra_power, expected.fach_extra_power);
  EXPECT_EQ(via_registry.tx_extra_power, expected.tx_extra_power);
}

TEST(ModelRegistry, UnknownNamesFlagsAndKnobsAreLoud) {
  try {
    make_radio_model("4g");
    FAIL();
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown radio '4g'"), std::string::npos);
    EXPECT_NE(msg.find("3g"), std::string::npos) << "should list known names";
    EXPECT_NE(msg.find("lora"), std::string::npos);
  }
  try {
    make_radio_model("3g:papr");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown flag 'papr'"),
              std::string::npos);
  }
  EXPECT_THROW(make_radio_model("3g:paper,sim"), std::invalid_argument);
  try {
    make_radio_model("3g:dch_tial=6");
    FAIL();
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown knob(s) dch_tial"), std::string::npos);
    EXPECT_NE(msg.find("dch_tail"), std::string::npos)
        << "help text should list the real knobs";
  }
}

TEST(ModelRegistry, RegistryIntrospection) {
  const ModelRegistry& r = builtin_model_registry();
  EXPECT_TRUE(r.contains("3g"));
  EXPECT_TRUE(r.contains("wifi"));
  EXPECT_TRUE(r.contains("lte_drx"));
  EXPECT_TRUE(r.contains("lte_cdrx"));
  EXPECT_TRUE(r.contains("lora"));
  EXPECT_FALSE(r.contains("4g"));
  EXPECT_FALSE(r.help("lte_cdrx").empty());
  EXPECT_THROW(r.help("4g"), std::invalid_argument);
}

TEST(ModelRegistry, RejectsBadRegistrations) {
  ModelRegistry r;
  EXPECT_THROW(r.register_model("a:b", "", [](const RadioParams&) {
    return RadioModel{};
  }),
               std::invalid_argument);
  EXPECT_THROW(r.register_model("ok", "", nullptr), std::invalid_argument);
  r.register_model("ok", "", [](const RadioParams&) { return RadioModel{}; });
  EXPECT_THROW(r.register_model("ok", "", [](const RadioParams&) {
    return RadioModel{};
  }),
               std::invalid_argument);
}

TEST(ModelRegistry, CdrxModelCarriesTheLadder) {
  const RadioModel m =
      make_radio_model("lte_cdrx:inactivity=5,drx_short=0.02,drx_long=1.28");
  ASSERT_TRUE(m.cdrx.has_value());
  EXPECT_DOUBLE_EQ(m.cdrx->inactivity, 5.0);
  EXPECT_DOUBLE_EQ(m.cdrx->short_cycle, 0.02);
  EXPECT_DOUBLE_EQ(m.cdrx->long_cycle, 1.28);
  EXPECT_EQ(m.power.name, "LteCdrx");
  // The compiled model has the long-DRX window as an extra tail phase.
  ASSERT_EQ(m.power.extra_tail.size(), 1u);
  EXPECT_DOUBLE_EQ(m.power.dch_tail, 5.0);
  // Invalid ladders are rejected through the same spec path.
  EXPECT_THROW(make_radio_model("lte_cdrx:inactivity=0"),
               std::invalid_argument);
  EXPECT_THROW(make_radio_model("lte_cdrx:drx_short=2,drx_long=1"),
               std::invalid_argument);
}

TEST(ModelRegistry, LoraModelAndValidation) {
  const RadioModel m = make_radio_model("lora:sf=9");
  ASSERT_TRUE(m.lora.has_value());
  EXPECT_DOUBLE_EQ(m.lora->spreading_factor, 9.0);
  EXPECT_DOUBLE_EQ(m.bandwidth, 1100.0);  // anchored at sf=9
  EXPECT_EQ(m.power.name, "LoRaP2P");

  // Each spreading-factor step roughly halves the rate (modulo the sf gain).
  const double r10 = make_radio_model("lora:sf=10").bandwidth;
  const double r7 = make_radio_model("lora:sf=7").bandwidth;
  EXPECT_LT(r10, 1100.0);
  EXPECT_GT(r7, 1100.0);

  EXPECT_THROW(make_radio_model("lora:sf=4"), std::invalid_argument);
  EXPECT_THROW(make_radio_model("lora:sf=13"), std::invalid_argument);
  EXPECT_THROW(make_radio_model("lora:ack_timeout=0"), std::invalid_argument);
  EXPECT_THROW(make_radio_model("lora:max_retries=-1"),
               std::invalid_argument);
}

TEST(ModelRegistry, LoraHeartbeatKnobs) {
  const RadioModel m =
      make_radio_model("lora:heartbeat_period=30,heartbeat_bytes=24");
  ASSERT_TRUE(m.lora.has_value());
  EXPECT_DOUBLE_EQ(m.lora->heartbeat_period, 30.0);
  EXPECT_EQ(m.lora->heartbeat_bytes, 24);
}

}  // namespace
}  // namespace etrain::radio
