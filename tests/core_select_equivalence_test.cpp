// Property tests pinning the optimized EtrainScheduler::select_into()
// kernel to the naive formulation it replaced.
//
// Two oracles, both deliberate copies of scan-the-queues-every-round
// selection loops:
//   * fixed_naive_select  — the naive structure with the *documented*
//     deterministic ordering (gain desc, arrival asc, id asc). The
//     optimized kernel must match it on every randomized case.
//   * frozen_pr1_select   — the loop exactly as it shipped in PR 1,
//     including its quirky tie-break (`best_packet >= 0` + id-only
//     comparison). On workloads whose packet ids are numbered in arrival
//     order — which is what the scenario generator produces — the fix is
//     provably behavior-preserving, and the test verifies byte-identical
//     Selections against this oracle on that subset.
//
// Plus the zero-allocation contract: a warm scheduler with a reused output
// buffer must not touch the heap (counted via a global operator new hook).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <random>
#include <unordered_set>
#include <vector>

#include "core/cost_profile.h"
#include "core/etrain_scheduler.h"

// --------------------------------------------------------------------------
// Allocation counter: every global operator new bumps g_allocs. Counting
// only — allocation behavior is otherwise unchanged.
namespace {
std::atomic<std::size_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace etrain;
using core::CostProfile;
using core::EtrainConfig;
using core::QueuedPacket;
using core::Selection;
using core::SlotContext;
using core::WaitingQueues;

// Shared gate logic of both oracles — identical to the shipped kernel's
// pre-greedy phase.
bool gate_open(const EtrainConfig& config, const SlotContext& ctx,
               const WaitingQueues& queues, double* total_cost) {
  *total_cost = queues.instantaneous_cost(ctx.slot_start);
  if (*total_cost < config.theta && !ctx.heartbeat_now) return false;
  if (!ctx.heartbeat_now && config.drip_defer_window > 0.0) {
    if (ctx.next_heartbeat() - ctx.slot_start <= config.drip_defer_window) {
      return false;
    }
  }
  if (!ctx.heartbeat_now && config.channel_aware &&
      *total_cost < config.panic_factor * config.theta &&
      ctx.bandwidth_long_term > 0.0 &&
      ctx.bandwidth_estimate <
          config.channel_threshold * ctx.bandwidth_long_term) {
    return false;
  }
  return true;
}

/// Naive full-rescan selection with the documented (gain desc, arrival asc,
/// id asc) ordering.
std::vector<Selection> fixed_naive_select(const EtrainConfig& config,
                                          const SlotContext& ctx,
                                          const WaitingQueues& queues) {
  std::vector<Selection> chosen;
  if (queues.empty()) return chosen;
  double total_cost = 0.0;
  if (!gate_open(config, ctx, queues, &total_cost)) return chosen;

  const TimePoint next_slot = ctx.slot_start + ctx.slot_length;
  const std::size_t k_limit = ctx.heartbeat_now ? config.k : 1;
  const int apps = queues.app_count();
  std::vector<double> selected_cost(apps, 0.0);
  std::vector<double> queue_spec_cost(apps, 0.0);
  for (int i = 0; i < apps; ++i) {
    queue_spec_cost[i] = queues.app_speculative_cost(i, next_slot);
  }
  std::unordered_set<core::PacketId> taken;

  while (chosen.size() < k_limit && chosen.size() < queues.total_size()) {
    double best_gain = -std::numeric_limits<double>::infinity();
    int best_app = -1;
    core::PacketId best_packet = -1;
    TimePoint best_arrival = 0.0;
    bool have_best = false;
    for (int i = 0; i < apps; ++i) {
      const double remaining = queue_spec_cost[i] - selected_cost[i];
      for (const QueuedPacket& p : queues.queue(i)) {
        if (taken.contains(p.packet.id)) continue;
        const double phi = p.speculative_cost(next_slot);
        if (!ctx.heartbeat_now && phi <= 0.0) continue;
        const double gain = remaining * phi - phi * phi / 2.0;
        if (gain > best_gain + 1e-12 ||
            (have_best && gain > best_gain - 1e-12 &&
             (p.packet.arrival < best_arrival ||
              (p.packet.arrival == best_arrival &&
               p.packet.id < best_packet)))) {
          best_gain = gain;
          best_app = i;
          best_packet = p.packet.id;
          best_arrival = p.packet.arrival;
          have_best = true;
        }
      }
    }
    if (best_app < 0) break;
    const auto& q = queues.queue(best_app);
    const auto it = std::find_if(
        q.begin(), q.end(), [best_packet](const QueuedPacket& p) {
          return p.packet.id == best_packet;
        });
    selected_cost[best_app] += it->speculative_cost(next_slot);
    taken.insert(best_packet);
    chosen.push_back(Selection{best_app, best_packet});
  }
  return chosen;
}

/// The greedy loop exactly as PR 1 shipped it (tie-break quirks included).
std::vector<Selection> frozen_pr1_select(const EtrainConfig& config,
                                         const SlotContext& ctx,
                                         const WaitingQueues& queues) {
  std::vector<Selection> chosen;
  if (queues.empty()) return chosen;
  double total_cost = 0.0;
  if (!gate_open(config, ctx, queues, &total_cost)) return chosen;

  const TimePoint next_slot = ctx.slot_start + ctx.slot_length;
  const std::size_t k_limit = ctx.heartbeat_now ? config.k : 1;
  const int apps = queues.app_count();
  std::vector<double> selected_cost(apps, 0.0);
  std::vector<double> queue_spec_cost(apps, 0.0);
  for (int i = 0; i < apps; ++i) {
    queue_spec_cost[i] = queues.app_speculative_cost(i, next_slot);
  }
  std::unordered_set<core::PacketId> taken;

  while (chosen.size() < k_limit && chosen.size() < queues.total_size()) {
    double best_gain = -std::numeric_limits<double>::infinity();
    int best_app = -1;
    core::PacketId best_packet = -1;
    for (int i = 0; i < apps; ++i) {
      const double remaining = queue_spec_cost[i] - selected_cost[i];
      for (const QueuedPacket& p : queues.queue(i)) {
        if (taken.contains(p.packet.id)) continue;
        const double phi = p.speculative_cost(next_slot);
        if (!ctx.heartbeat_now && phi <= 0.0) continue;
        const double gain = remaining * phi - phi * phi / 2.0;
        if (gain > best_gain + 1e-12 ||
            (gain > best_gain - 1e-12 && best_packet >= 0 &&
             p.packet.id < best_packet)) {
          best_gain = gain;
          best_app = i;
          best_packet = p.packet.id;
        }
      }
    }
    if (best_app < 0) break;
    const auto& q = queues.queue(best_app);
    const auto it = std::find_if(
        q.begin(), q.end(), [best_packet](const QueuedPacket& p) {
          return p.packet.id == best_packet;
        });
    selected_cost[best_app] += it->speculative_cost(next_slot);
    taken.insert(best_packet);
    chosen.push_back(Selection{best_app, best_packet});
  }
  return chosen;
}

const CostProfile* profile_for(int i) {
  switch (i % 3) {
    case 0:
      return &core::mail_cost_profile();
    case 1:
      return &core::weibo_cost_profile();
    default:
      return &core::cloud_cost_profile();
  }
}

struct RandomCase {
  WaitingQueues queues;
  SlotContext ctx;
  EtrainConfig config;
  bool ids_arrival_ordered = false;
};

/// One randomized slot: 1-4 apps, 0-12 packets each with clustered arrivals
/// (so exact speculative-cost ties actually occur), mixed profiles, random
/// gate conditions. Even case indices number packet ids in arrival order —
/// the invariant the scenario generator guarantees — so the frozen PR-1
/// oracle applies to them too.
RandomCase make_case(std::mt19937_64& rng, int index) {
  const int apps = 1 + static_cast<int>(rng() % 4);
  RandomCase c{WaitingQueues(apps), {}, {}, index % 2 == 0};

  const TimePoint t = 100.0 + static_cast<double>(rng() % 900);
  c.ctx.slot_start = t;
  c.ctx.slot_length = 1.0;
  c.ctx.heartbeat_now = rng() % 2 == 0;
  if (rng() % 4 == 0) c.ctx.upcoming_heartbeats = {t + 30.0};

  const double thetas[] = {0.0, 0.1, 0.5, 2.0};
  c.config.theta = thetas[rng() % 4];
  const std::size_t ks[] = {1, 2, 5, 20, EtrainConfig::unlimited_k()};
  c.config.k = ks[rng() % 5];
  c.config.drip_defer_window = rng() % 2 == 0 ? 0.0 : 60.0;

  struct Draft {
    core::Packet packet;
    const CostProfile* profile;
  };
  std::vector<Draft> drafts;
  for (int app = 0; app < apps; ++app) {
    const int count = static_cast<int>(rng() % 13);
    for (int j = 0; j < count; ++j) {
      Draft d;
      d.packet.app = app;
      // Clustered arrivals: a coarse grid behind the slot start, so
      // packets of equal age (and thus exactly tied gains) are common.
      d.packet.arrival = t - static_cast<double>(rng() % 24) * 7.5;
      const double deadlines[] = {30.0, 60.0, 120.0};
      d.packet.deadline = deadlines[rng() % 3];
      d.packet.bytes = 1000 + static_cast<Bytes>(rng() % 4000);
      d.profile = profile_for(static_cast<int>(rng() % 3));
      drafts.push_back(d);
    }
  }
  if (c.ids_arrival_ordered) {
    std::stable_sort(drafts.begin(), drafts.end(),
                     [](const Draft& a, const Draft& b) {
                       return a.packet.arrival < b.packet.arrival;
                     });
    for (std::size_t i = 0; i < drafts.size(); ++i) {
      drafts[i].packet.id = static_cast<core::PacketId>(i);
    }
    // Queues enqueue in arrival order per app, matching the generator.
    for (const Draft& d : drafts) {
      c.queues.enqueue(QueuedPacket{d.packet, d.profile});
    }
  } else {
    // Adversarial id numbering: ids deliberately uncorrelated with arrival.
    std::vector<core::PacketId> ids(drafts.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids[i] = static_cast<core::PacketId>(i);
    }
    std::shuffle(ids.begin(), ids.end(), rng);
    for (std::size_t i = 0; i < drafts.size(); ++i) {
      drafts[i].packet.id = ids[i];
      c.queues.enqueue(QueuedPacket{drafts[i].packet, drafts[i].profile});
    }
  }
  return c;
}

void expect_same(const std::vector<Selection>& got,
                 const std::vector<Selection>& want, int case_index,
                 const char* oracle) {
  ASSERT_EQ(got.size(), want.size())
      << "case " << case_index << " vs " << oracle;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].app, want[i].app)
        << "case " << case_index << " pick " << i << " vs " << oracle;
    EXPECT_EQ(got[i].packet, want[i].packet)
        << "case " << case_index << " pick " << i << " vs " << oracle;
  }
}

TEST(SelectEquivalence, MatchesNaiveOraclesOnRandomizedQueues) {
  std::mt19937_64 rng(0xE7121A1F);
  int nonempty = 0;
  int frozen_checked = 0;
  for (int i = 0; i < 1200; ++i) {
    const RandomCase c = make_case(rng, i);
    core::EtrainScheduler scheduler(c.config);
    std::vector<Selection> optimized;
    scheduler.select_into(c.ctx, c.queues, optimized);

    const auto fixed = fixed_naive_select(c.config, c.ctx, c.queues);
    expect_same(optimized, fixed, i, "fixed-naive");
    if (!fixed.empty()) ++nonempty;

    if (c.ids_arrival_ordered) {
      const auto frozen = frozen_pr1_select(c.config, c.ctx, c.queues);
      expect_same(optimized, frozen, i, "frozen-pr1");
      ++frozen_checked;
    }

    // select() must be the same function through the allocating interface.
    const auto via_select = scheduler.select(c.ctx, c.queues);
    expect_same(via_select, fixed, i, "select()-adapter");
  }
  // The generator must actually exercise the greedy loop, not just closed
  // gates, and must cover the frozen-oracle subset.
  EXPECT_GT(nonempty, 300);
  EXPECT_EQ(frozen_checked, 600);
}

TEST(SelectEquivalence, RepeatedCallsAreIdempotent) {
  std::mt19937_64 rng(7);
  const RandomCase c = make_case(rng, 0);
  core::EtrainScheduler scheduler(c.config);
  std::vector<Selection> first;
  std::vector<Selection> second;
  scheduler.select_into(c.ctx, c.queues, first);
  scheduler.select_into(c.ctx, c.queues, second);
  expect_same(second, first, 0, "first call");
}

TEST(SelectEquivalence, WarmSelectIntoPerformsZeroAllocations) {
  WaitingQueues queues(3);
  for (int i = 0; i < 256; ++i) {
    core::Packet p;
    p.id = i;
    p.app = i % 3;
    p.arrival = i * 0.5;
    p.deadline = 60.0;
    p.bytes = 2000;
    queues.enqueue(QueuedPacket{p, &core::weibo_cost_profile()});
  }
  core::EtrainScheduler scheduler(
      {.theta = 0.0, .k = EtrainConfig::unlimited_k()});
  SlotContext ctx;
  ctx.slot_start = 1000.0;
  ctx.heartbeat_now = true;

  std::vector<Selection> out;
  scheduler.select_into(ctx, queues, out);  // warm-up: buffers grow here
  const std::size_t before = g_allocs.load(std::memory_order_relaxed);
  scheduler.select_into(ctx, queues, out);
  const std::size_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "steady-state select_into allocated";
  EXPECT_EQ(out.size(), 256u);
}

}  // namespace
