#include "radio/power_monitor.h"

#include <gtest/gtest.h>

namespace etrain::radio {
namespace {

TransmissionLog make_log() {
  TransmissionLog log;
  Transmission a;
  a.start = 10.0;
  a.duration = 1.0;
  a.bytes = 400;
  a.kind = TxKind::kHeartbeat;
  log.add(a);
  Transmission b;
  b.start = 40.0;
  b.duration = 2.0;
  b.bytes = 5000;
  log.add(b);
  return log;
}

TEST(PowerMonitor, SampleCountAndSpacing) {
  const PowerMonitor monitor(0.1, 3.7);
  const auto trace = make_log(), &log = trace;
  const auto samples = monitor.sample(log, PowerModel::PaperUmts3G(), 10.0);
  ASSERT_EQ(samples.size(), 100u);
  EXPECT_DOUBLE_EQ(samples[0].time, 0.0);
  EXPECT_NEAR(samples[1].time - samples[0].time, 0.1, 1e-12);
  EXPECT_NEAR(samples.back().time, 9.9, 1e-9);
}

TEST(PowerMonitor, CurrentMatchesPowerOverVoltage) {
  const PowerMonitor monitor(0.1, 3.7);
  const auto log = make_log();
  const auto samples = monitor.sample(log, PowerModel::PaperUmts3G(), 60.0);
  for (const auto& s : samples) {
    EXPECT_NEAR(s.amps * 3.7, s.power, 1e-12);
  }
}

TEST(PowerMonitor, IntegralConvergesToAnalyticEnergy) {
  // The Monsoon-style sampled integral must agree with the closed-form
  // meter; at 0.1 s sampling over piecewise-constant power the error is at
  // most a few sample-widths of the largest power step.
  const PowerModel m = PowerModel::PaperUmts3G();
  const auto log = make_log();
  const double horizon = 120.0;
  const auto analytic = measure_energy(log, m, horizon);

  const PowerMonitor coarse(0.1, 3.7);
  const auto e_coarse = coarse.integrate(coarse.sample(log, m, horizon));
  EXPECT_NEAR(e_coarse, analytic.total_energy(), 2.0);

  const PowerMonitor fine(0.001, 3.7);
  const auto e_fine = fine.integrate(fine.sample(log, m, horizon));
  EXPECT_NEAR(e_fine, analytic.total_energy(), 0.05);
}

TEST(PowerMonitor, IdleOnlyTraceIntegratesToBaseline) {
  const PowerModel m = PowerModel::PaperUmts3G();
  const PowerMonitor monitor(0.1, 3.7);
  const TransmissionLog empty;
  const auto e = monitor.integrate(monitor.sample(empty, m, 100.0));
  EXPECT_NEAR(e, m.idle_power * 100.0, 1e-9);
}

TEST(PowerMonitor, CapturesTailPlateaus) {
  const PowerModel m = PowerModel::PaperUmts3G();
  const PowerMonitor monitor(0.1, 3.7);
  const auto log = make_log();
  const auto samples = monitor.sample(log, m, 60.0);
  // t = 15 s: inside the DCH tail of the first transmission (ended at 11).
  const auto& dch = samples[150];
  EXPECT_NEAR(dch.power, m.idle_power + m.dch_extra_power, 1e-12);
  // t = 25 s: inside the FACH phase (11 + 10 = 21 .. 28.5).
  const auto& fach = samples[250];
  EXPECT_NEAR(fach.power, m.idle_power + m.fach_extra_power, 1e-12);
  // t = 35 s: radio back to idle (tail over at 28.5, next tx at 40).
  const auto& idle = samples[350];
  EXPECT_NEAR(idle.power, m.idle_power, 1e-12);
}

TEST(PowerMonitor, InvalidParametersThrow) {
  EXPECT_THROW(PowerMonitor(0.0, 3.7), std::invalid_argument);
  EXPECT_THROW(PowerMonitor(0.1, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace etrain::radio
