// Unit tests for the simulated train-app daemons (AlarmManager-driven
// heartbeat loops, incl. NetEase's doubling cycle) on the DES kernel.
#include <gtest/gtest.h>

#include "net/bandwidth_trace.h"
#include "system/train_app.h"

namespace etrain::system {
namespace {

struct Fixture {
  sim::Simulator simulator;
  android::AlarmManager alarms{simulator};
  android::XposedRegistry xposed;
  radio::PowerModel model = radio::PowerModel::PaperUmts3G();
  net::BandwidthTrace trace = net::BandwidthTrace::constant(120e3, 60);
  net::RadioLink link{simulator, model, trace};
};

TEST(TrainAppProcess, FixedCycleBeatsOnSchedule) {
  Fixture f;
  TrainAppProcess app(0, apps::wechat_spec(), 10.0, f.alarms, f.xposed,
                      f.link);
  std::vector<TimePoint> observed;
  f.xposed.hook_method(app.hook_class(), TrainAppProcess::hook_method(),
                       [&](const android::MethodCall& c) {
                         observed.push_back(c.time);
                       });
  app.start();
  f.simulator.run_until(1000.0);
  // 270 s cycle from 10: beats at 10, 280, 550, 820.
  ASSERT_EQ(observed.size(), 4u);
  EXPECT_DOUBLE_EQ(observed[0], 10.0);
  EXPECT_DOUBLE_EQ(observed[3], 820.0);
  EXPECT_EQ(app.beats_sent(), 4);
  EXPECT_EQ(f.link.log().count(radio::TxKind::kHeartbeat), 4u);
}

TEST(TrainAppProcess, DoublingCycleFollowsDiscipline) {
  Fixture f;
  TrainAppProcess app(0, apps::netease_spec(), 0.0, f.alarms, f.xposed,
                      f.link);
  std::vector<TimePoint> observed;
  f.xposed.hook_method(app.hook_class(), TrainAppProcess::hook_method(),
                       [&](const android::MethodCall& c) {
                         observed.push_back(c.time);
                       });
  app.start();
  f.simulator.run_until(1000.0);
  // NetEase: 60 s gaps for the first six, then 120 s.
  ASSERT_GE(observed.size(), 9u);
  EXPECT_DOUBLE_EQ(observed[1] - observed[0], 60.0);
  EXPECT_DOUBLE_EQ(observed[6] - observed[5], 60.0);
  EXPECT_DOUBLE_EQ(observed[7] - observed[6], 120.0);
  EXPECT_DOUBLE_EQ(observed[8] - observed[7], 120.0);
}

TEST(TrainAppProcess, StopCancelsFutureBeats) {
  Fixture f;
  TrainAppProcess app(0, apps::qq_spec(), 0.0, f.alarms, f.xposed, f.link);
  app.start();
  f.simulator.run_until(350.0);  // beats at 0, 300
  EXPECT_EQ(app.beats_sent(), 2);
  app.stop();
  f.simulator.run_until(2000.0);
  EXPECT_EQ(app.beats_sent(), 2);
}

TEST(TrainAppProcess, StartIsIdempotent) {
  Fixture f;
  TrainAppProcess app(0, apps::qq_spec(), 0.0, f.alarms, f.xposed, f.link);
  app.start();
  app.start();
  f.simulator.run_until(10.0);
  EXPECT_EQ(app.beats_sent(), 1);  // not doubled
}

TEST(TrainAppProcess, HeartbeatBytesMatchSpec) {
  Fixture f;
  TrainAppProcess app(0, apps::qq_spec(), 0.0, f.alarms, f.xposed, f.link);
  app.start();
  f.simulator.run_until(10.0);
  ASSERT_EQ(f.link.log().size(), 1u);
  EXPECT_EQ(f.link.log()[0].bytes, 378);
  EXPECT_EQ(f.link.log()[0].kind, radio::TxKind::kHeartbeat);
}

TEST(TrainAppProcess, HookClassNamesPerApp) {
  Fixture f;
  TrainAppProcess a(0, apps::qq_spec(), 0.0, f.alarms, f.xposed, f.link);
  TrainAppProcess b(1, apps::wechat_spec(), 0.0, f.alarms, f.xposed, f.link);
  EXPECT_NE(a.hook_class(), b.hook_class());
}

}  // namespace
}  // namespace etrain::system
