#include <gtest/gtest.h>

#include "baselines/baseline_policy.h"
#include "baselines/etime_policy.h"
#include "baselines/oracle_policy.h"
#include "baselines/peres_policy.h"
#include "baselines/tailender_policy.h"

namespace etrain::baselines {
namespace {

using core::CargoAppId;
using core::PacketId;
using core::QueuedPacket;
using core::SlotContext;
using core::WaitingQueues;

QueuedPacket make(PacketId id, CargoAppId app, TimePoint arrival,
                  Duration deadline, Bytes bytes = 1000) {
  core::Packet p;
  p.id = id;
  p.app = app;
  p.arrival = arrival;
  p.deadline = deadline;
  p.bytes = bytes;
  return QueuedPacket{p, &core::weibo_cost_profile()};
}

SlotContext slot(TimePoint t, Duration len = 1.0, double bw_est = 100e3,
                 double bw_avg = 100e3) {
  SlotContext ctx;
  ctx.slot_start = t;
  ctx.slot_length = len;
  ctx.bandwidth_estimate = bw_est;
  ctx.bandwidth_long_term = bw_avg;
  return ctx;
}

// --- Baseline ---

TEST(BaselinePolicy, SelectsEverythingImmediately) {
  BaselinePolicy p;
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 60.0));
  q.enqueue(make(2, 1, 0.0, 60.0));
  EXPECT_EQ(p.select(slot(1.0), q).size(), 2u);
  EXPECT_EQ(p.name(), "Baseline");
}

TEST(BaselinePolicy, EmptyIsEmpty) {
  BaselinePolicy p;
  WaitingQueues q(1);
  EXPECT_TRUE(p.select(slot(1.0), q).empty());
}

// --- eTime ---

TEST(ETimePolicy, Uses60SecondSlots) {
  ETimePolicy p(ETimeConfig{});
  EXPECT_DOUBLE_EQ(p.preferred_slot_length(), 60.0);
}

TEST(ETimePolicy, RejectsInvalidConfig) {
  EXPECT_THROW(ETimePolicy({.v = -1.0}), std::invalid_argument);
  EXPECT_THROW(ETimePolicy({.v = 1.0, .slot_length = 0.0}),
               std::invalid_argument);
}

TEST(ETimePolicy, WaitsOnPoorChannelSmallBacklog) {
  ETimePolicy p({.v = 2.0});
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, 2000));  // 0.1 backlog units
  // Fresh packet, channel at half the average: score << V.
  EXPECT_TRUE(p.select(slot(0.0, 60.0, 50e3, 100e3), q).empty());
}

TEST(ETimePolicy, FiresOnGoodChannel) {
  ETimePolicy p({.v = 1.0});
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, 40000));  // 2.0 backlog units
  // Channel at 1.5x average: 2.0 * 1.5 >= 1.0.
  EXPECT_EQ(p.select(slot(0.0, 60.0, 150e3, 100e3), q).size(), 1u);
}

TEST(ETimePolicy, AgedBacklogForcesTransmissionDespitePoorChannel) {
  ETimePolicy p({.v = 2.0});
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, 2000));
  // 10 slots (600 s) of queueing age: age term alone = 10 units; even a
  // 25%-of-average channel clears V = 2.
  EXPECT_EQ(p.select(slot(600.0, 60.0, 25e3, 100e3), q).size(), 1u);
}

TEST(ETimePolicy, DecidesPerAppIndependently) {
  ETimePolicy p({.v = 1.0});
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 60.0, 100000));  // 5 units -> fires
  q.enqueue(make(2, 1, 0.0, 60.0, 1000));    // 0.05 units -> waits
  const auto sel = p.select(slot(0.0, 60.0, 100e3, 100e3), q);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].app, 0);
}

TEST(ETimePolicy, FlushesWholeQueueWhenItFires) {
  ETimePolicy p({.v = 0.5});
  WaitingQueues q(1);
  for (PacketId id = 0; id < 4; ++id) {
    q.enqueue(make(id, 0, 0.0, 60.0, 30000));
  }
  EXPECT_EQ(p.select(slot(0.0, 60.0, 120e3, 100e3), q).size(), 4u);
}

// --- PerES ---

TEST(PerESPolicy, RejectsInvalidConfig) {
  EXPECT_THROW(PerESPolicy({.omega = -1.0}), std::invalid_argument);
  EXPECT_THROW(PerESPolicy({.omega = 1.0, .gain = 0.0}),
               std::invalid_argument);
}

TEST(PerESPolicy, DynamicVConvergesTowardCostBound) {
  PerESPolicy p({.omega = 1.0, .v_initial = 1.0, .gain = 0.1});
  WaitingQueues q(1);
  // Empty queues: realized cost 0 < omega, so V climbs (be patient).
  const double v0 = p.v();
  p.select(slot(0.0), q);
  p.select(slot(1.0), q);
  EXPECT_GT(p.v(), v0);

  // Now a badly delayed packet: cost >> omega, V drops (drain).
  q.enqueue(make(1, 0, 0.0, 60.0));
  const double v_high = p.v();
  p.select(slot(200.0), q);  // weibo cost saturates at 2 > omega
  EXPECT_LT(p.v(), v_high);
}

TEST(PerESPolicy, ResetRestoresInitialV) {
  PerESPolicy p({.omega = 1.0, .v_initial = 2.5, .gain = 0.1});
  WaitingQueues q(1);
  p.select(slot(0.0), q);
  EXPECT_NE(p.v(), 2.5);
  p.reset();
  EXPECT_DOUBLE_EQ(p.v(), 2.5);
}

TEST(PerESPolicy, DrainsWhenCostTimesChannelClearsV) {
  PerESPolicy p({.omega = 0.1, .v_initial = 0.2, .gain = 0.001});
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0));
  // Cost at t=30 is 0.5, channel 1.0 -> 0.5 >= ~0.2: fires.
  EXPECT_EQ(p.select(slot(30.0), q).size(), 1u);
}

TEST(PerESPolicy, PerAppDecisions) {
  PerESPolicy p({.omega = 0.1, .v_initial = 0.4, .gain = 1e-9});
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 60.0));   // cost 0.5 at t=30 -> fires
  q.enqueue(make(2, 1, 29.0, 60.0));  // cost ~0.02 -> waits
  const auto sel = p.select(slot(30.0), q);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].app, 0);
}

// --- TailEnder ---

TEST(TailEnderPolicy, WaitsUntilADeadlineIsImminent) {
  TailEnderPolicy p({.guard = 1.0});
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0));
  EXPECT_TRUE(p.select(slot(10.0), q).empty());
  // At t=58, deadline 60 falls within slot+guard: flush.
  EXPECT_EQ(p.select(slot(58.5), q).size(), 1u);
}

TEST(TailEnderPolicy, OneImminentDeadlineDragsWholeBacklog) {
  TailEnderPolicy p({.guard = 1.0});
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 60.0));    // expires at 60
  q.enqueue(make(2, 1, 50.0, 600.0));  // fresh, far deadline
  const auto sel = p.select(slot(59.0), q);
  EXPECT_EQ(sel.size(), 2u);  // aggregation is the whole point
}

TEST(TailEnderPolicy, NegativeGuardRejected) {
  EXPECT_THROW(TailEnderPolicy({.guard = -0.5}), std::invalid_argument);
}

// --- Oracle ---

TEST(OraclePolicy, RidesTheTrain) {
  OraclePolicy p;
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 600.0));
  auto ctx = slot(10.0);
  ctx.heartbeat_now = true;
  EXPECT_EQ(p.select(ctx, q).size(), 1u);
}

TEST(OraclePolicy, FlushesAtDeadlineWhenNoTrainComes) {
  OraclePolicy p;
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0));
  auto early = slot(30.0);
  early.upcoming_heartbeats = {500.0};
  EXPECT_TRUE(p.select(early, q).empty());
  auto at_deadline = slot(59.5);
  at_deadline.upcoming_heartbeats = {500.0};
  EXPECT_EQ(p.select(at_deadline, q).size(), 1u);
}

}  // namespace
}  // namespace etrain::baselines
