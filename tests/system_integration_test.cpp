// End-to-end tests of the full Android-substrate pipeline: AlarmManager ->
// train daemon -> Xposed hook -> HeartbeatMonitor -> Algorithm 1 ->
// Broadcast -> cargo client -> RadioLink -> EnergyMeter.
#include <set>

#include <gtest/gtest.h>

#include "apps/cargo_app.h"
#include "baselines/baseline_policy.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"
#include "system/etrain_system.h"

namespace etrain::system {
namespace {

struct Fixture {
  Duration horizon = 3600.0;
  std::uint64_t seed = 42;

  std::unique_ptr<EtrainSystem> build(
      core::EtrainConfig scheduler, int train_count,
      std::vector<std::vector<core::Packet>>* out_packets = nullptr) {
    EtrainSystem::Config cfg;
    cfg.horizon = horizon;
    cfg.service.scheduler = scheduler;
    auto sys_ptr = std::make_unique<EtrainSystem>(cfg, net::wuhan_trace());
    EtrainSystem& sys = *sys_ptr;
    const auto trains = apps::default_train_specs();
    for (int i = 0; i < train_count; ++i) {
      sys.add_train_app(trains[i], 5.0 * i);
    }
    Rng rng(seed);
    const auto cargo = apps::default_cargo_specs();
    for (std::size_t i = 0; i < cargo.size(); ++i) {
      Rng stream = rng.fork();
      auto packets =
          apps::generate_arrivals(cargo[i], static_cast<int>(i), horizon,
                                  stream, static_cast<core::PacketId>(i) << 20);
      if (out_packets != nullptr) out_packets->push_back(packets);
      sys.add_cargo_app(static_cast<int>(i), *cargo[i].profile,
                        std::move(packets));
    }
    return sys_ptr;
  }
};

TEST(EtrainSystemTest, AllPacketsDeliveredExactlyOnce) {
  Fixture f;
  std::vector<std::vector<core::Packet>> traces;
  auto sys = f.build({.theta = 0.2, .k = 20}, 3, &traces);
  const auto m = sys->run();
  std::size_t expected = 0;
  for (const auto& t : traces) expected += t.size();
  EXPECT_EQ(m.outcomes.size(), expected);
  std::set<core::PacketId> ids;
  for (const auto& o : m.outcomes) ids.insert(o.id);
  EXPECT_EQ(ids.size(), expected);
}

TEST(EtrainSystemTest, HeartbeatsSentPerSchedule) {
  Fixture f;
  auto sys = f.build({.theta = 0.2, .k = 20}, 3);
  const auto m = sys->run();
  // QQ 300 s (13 beats incl. one exactly at the horizon), WeChat 270 s (14
  // at offset 5), WhatsApp 240 s (15). A beat scheduled exactly at the
  // horizon still fires, hence the closed interval.
  const std::size_t expected =
      apps::build_train_schedule(apps::default_train_specs(),
                                 f.horizon + 1e-6)
          .size();
  EXPECT_EQ(m.log.count(radio::TxKind::kHeartbeat), expected);
  for (const auto& train : sys->trains()) {
    EXPECT_GT(train->beats_sent(), 0);
  }
}

TEST(EtrainSystemTest, CausalityHolds) {
  Fixture f;
  auto sys = f.build({.theta = 0.5, .k = 20}, 3);
  const auto m = sys->run();
  for (const auto& o : m.outcomes) {
    EXPECT_GE(o.sent, o.arrival);
  }
}

TEST(EtrainSystemTest, MonitorLearnedAllTrainCycles) {
  Fixture f;
  auto sys = f.build({.theta = 0.2, .k = 20}, 3);
  // Run and then inspect the service's monitor.
  sys->run();
  const auto& monitor = sys->service().monitor();
  EXPECT_NEAR(*monitor.estimated_cycle(0), 300.0, 1e-6);
  EXPECT_NEAR(*monitor.estimated_cycle(1), 270.0, 1e-6);
  EXPECT_NEAR(*monitor.estimated_cycle(2), 240.0, 1e-6);
}

TEST(EtrainSystemTest, NoTrainAppsMeansPromptDelivery) {
  // Sec. V-3: without trains, eTrain must not make cargo wait indefinitely.
  Fixture f;
  f.horizon = 1200.0;
  auto sys = f.build({.theta = 5.0, .k = 20}, 0);
  const auto m = sys->run();
  EXPECT_GT(m.outcomes.size(), 0u);
  EXPECT_LT(m.normalized_delay, 5.0);
  EXPECT_EQ(m.log.count(radio::TxKind::kHeartbeat), 0u);
}

TEST(EtrainSystemTest, PacketsClusterAroundHeartbeats) {
  // The observable signature of piggybacking: most data transmissions start
  // within a short window after a heartbeat transmission.
  Fixture f;
  auto sys = f.build({.theta = 0.5, .k = 20}, 3);
  const auto m = sys->run();
  std::vector<TimePoint> hb_times;
  for (const auto& tx : m.log.entries()) {
    if (tx.kind == radio::TxKind::kHeartbeat) hb_times.push_back(tx.start);
  }
  std::size_t near_train = 0, data_count = 0;
  for (const auto& tx : m.log.entries()) {
    if (tx.kind != radio::TxKind::kData) continue;
    ++data_count;
    for (const TimePoint hb : hb_times) {
      if (tx.start >= hb && tx.start - hb <= 5.0) {
        ++near_train;
        break;
      }
    }
  }
  ASSERT_GT(data_count, 0u);
  EXPECT_GT(static_cast<double>(near_train) / data_count, 0.6);
}

TEST(EtrainSystemTest, SystemEnergyWithinRangeOfSlottedHarness) {
  // The DES system and the slotted harness implement the same semantics;
  // on the same workload their energies agree within a modest margin
  // (broadcast latency and tick alignment differ slightly).
  Fixture f;
  auto sys = f.build({.theta = 0.5, .k = 20}, 3);
  const auto m_system = sys->run();

  experiments::ScenarioConfig cfg;
  cfg.horizon = f.horizon;
  cfg.lambda = 0.08;
  cfg.model = radio::PowerModel::PaperUmts3G();
  experiments::Scenario s = make_scenario(cfg);
  core::EtrainScheduler policy({.theta = 0.5, .k = 20});
  const auto m_slotted = run_slotted(s, policy);

  // Workloads differ in RNG stream details, so compare loosely.
  EXPECT_GT(m_system.network_energy(), 0.4 * m_slotted.network_energy());
  EXPECT_LT(m_system.network_energy(), 2.5 * m_slotted.network_energy());
}

TEST(EtrainSystemTest, RunTwiceThrows) {
  Fixture f;
  f.horizon = 600.0;
  auto sys = f.build({.theta = 0.2, .k = 20}, 1);
  sys->run();
  EXPECT_THROW(sys->run(), std::logic_error);
}

TEST(EtrainSystemTest, HigherThetaSavesEnergyAddsDelay) {
  Fixture f;
  auto low = f.build({.theta = 0.1, .k = 20}, 3);
  auto high = f.build({.theta = 2.0, .k = 20}, 3);
  const auto m_low = low->run();
  const auto m_high = high->run();
  EXPECT_LT(m_high.network_energy(), m_low.network_energy());
  EXPECT_GT(m_high.normalized_delay, m_low.normalized_delay);
}

}  // namespace
}  // namespace etrain::system
