// Tests for the LTE/5G CDRX sleep ladder: parameter validation, the
// online CdrxStateMachine, and the property that the machine and the
// offline to_power_model() + EnergyMeter pipeline agree on random
// transmission logs (mirroring the RrcStateMachine/EnergyMeter pair).
#include "radio/cdrx.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "radio/energy_meter.h"
#include "radio/transmission_log.h"

namespace etrain::radio {
namespace {

TEST(CdrxParams, ValidateRejectsInconsistentLadders) {
  CdrxParams p;
  p.validate();  // defaults are sane

  CdrxParams bad = p;
  bad.inactivity = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.on_duration = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.on_duration = bad.short_cycle * 2.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.short_cycle = bad.long_cycle * 2.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.short_window = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.sleep_extra_power = bad.active_extra_power * 2.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = p;
  bad.long_wake_delay = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(CdrxParams, DutyCycledAveragePower) {
  CdrxParams p;
  p.on_duration = 0.01;
  p.active_extra_power = 1.0;
  p.sleep_extra_power = 0.0;
  // 10 ms on out of a 20 ms cycle: half the active power.
  EXPECT_DOUBLE_EQ(p.duty_extra_power(0.02), 0.5);
  // A longer cycle dozes more.
  EXPECT_GT(p.duty_extra_power(0.02), p.duty_extra_power(1.28));
}

TEST(CdrxParams, CompiledModelShape) {
  CdrxParams p;
  const PowerModel m = p.to_power_model();
  EXPECT_EQ(m.name, "LteCdrx");
  EXPECT_EQ(m.dch_tail, p.inactivity);
  EXPECT_EQ(m.fach_tail, p.short_window);
  EXPECT_EQ(m.dch_extra_power, p.active_extra_power);
  EXPECT_EQ(m.fach_extra_power, p.duty_extra_power(p.short_cycle));
  ASSERT_EQ(m.extra_tail.size(), 1u);
  EXPECT_EQ(m.extra_tail[0].length, p.long_window);
  EXPECT_EQ(m.extra_tail[0].extra_power, p.duty_extra_power(p.long_cycle));
  EXPECT_EQ(m.extra_tail[0].wake_delay, p.long_wake_delay);
  EXPECT_DOUBLE_EQ(m.tail_time(),
                   p.inactivity + p.short_window + p.long_window);

  // Zero long window compiles to a classic two-phase tail.
  CdrxParams no_long = p;
  no_long.long_window = 0.0;
  EXPECT_TRUE(no_long.to_power_model().extra_tail.empty());
}

TEST(CdrxMachine, LadderProgression) {
  CdrxParams p;  // inactivity 10, short window 0.64, long window 10.24
  CdrxStateMachine m(p);
  EXPECT_EQ(m.state_at(0.0), CdrxState::kIdle);

  m.on_transmission_start(100.0);
  EXPECT_TRUE(m.transmitting());
  EXPECT_EQ(m.state_at(100.5), CdrxState::kActive);
  m.on_transmission_end(101.0);

  EXPECT_EQ(m.state_at(101.0), CdrxState::kActive);
  EXPECT_EQ(m.state_at(110.9), CdrxState::kActive);
  EXPECT_EQ(m.state_at(111.0), CdrxState::kShortDrx);
  EXPECT_EQ(m.state_at(111.6), CdrxState::kShortDrx);
  EXPECT_EQ(m.state_at(111.7), CdrxState::kLongDrx);
  EXPECT_EQ(m.state_at(121.8), CdrxState::kLongDrx);
  EXPECT_EQ(m.state_at(121.9), CdrxState::kIdle);
}

TEST(CdrxMachine, PromotionDelaysPerStage) {
  CdrxParams p;
  CdrxStateMachine m(p);
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(0.0), p.idle_wake_delay);
  m.on_transmission_start(0.0);
  m.on_transmission_end(1.0);
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(5.0), 0.0);  // continuous reception
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(11.2), p.short_wake_delay);
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(15.0), p.long_wake_delay);
  EXPECT_DOUBLE_EQ(m.promotion_delay_at(50.0), p.idle_wake_delay);
}

TEST(CdrxMachine, RejectsProtocolMisuse) {
  CdrxParams p;
  CdrxStateMachine m(p);
  m.on_transmission_start(1.0);
  EXPECT_THROW(m.on_transmission_start(2.0), std::logic_error);
  EXPECT_THROW(m.on_transmission_end(0.5), std::invalid_argument);
  m.on_transmission_end(2.0);
  EXPECT_THROW(m.on_transmission_end(3.0), std::logic_error);
  EXPECT_THROW(m.state_at(1.0), std::invalid_argument);
}

/// The cross-check property: replay a random transmission log through the
/// online machine and sample power/promotion between transmissions; the
/// offline EnergyMeter's power_at and promotion_delay_after_gap over the
/// compiled PowerModel must agree everywhere, and the meter's tail buckets
/// must equal the ladder's closed-form stage energies.
void cross_check(const CdrxParams& params, std::uint64_t seed) {
  const PowerModel model = params.to_power_model();
  const Duration ladder =
      params.inactivity + params.short_window + params.long_window;

  Rng rng(seed);
  TransmissionLog log;
  CdrxStateMachine machine(params);

  TimePoint t = 1.0;
  std::vector<Transmission> txs;
  for (int i = 0; i < 60; ++i) {
    Transmission tx;
    tx.start = t;
    tx.setup = 0.0;  // promotion handled by the harness, not the log replay
    tx.duration = rng.uniform(0.05, 2.0);
    tx.bytes = 100;
    tx.kind = TxKind::kData;
    log.add(tx);
    txs.push_back(tx);
    // Gaps spanning every stage: inside inactivity, short DRX, long DRX,
    // and past the full ladder.
    t = tx.end() + rng.uniform(0.0, 1.5 * ladder);
  }
  const Duration horizon = log.last_end() + model.tail_time() + 1.0;

  // Replay online, sampling the gap after each transmission.
  for (std::size_t i = 0; i < txs.size(); ++i) {
    machine.on_transmission_start(txs[i].start);
    machine.on_transmission_end(txs[i].end());
    const TimePoint gap_end =
        (i + 1 < txs.size()) ? txs[i + 1].start : horizon;
    for (int s = 0; s < 8; ++s) {
      const TimePoint sample =
          txs[i].end() + (gap_end - txs[i].end()) * (s + 0.5) / 8.0;
      ASSERT_DOUBLE_EQ(machine.power_at(sample),
                       power_at(log, model, sample))
          << "power mismatch at t=" << sample << " (seed " << seed << ")";
      ASSERT_DOUBLE_EQ(
          machine.promotion_delay_at(sample),
          model.promotion_delay_after_gap(sample - txs[i].end()))
          << "promotion mismatch at t=" << sample << " (seed " << seed
          << ")";
    }
  }

  // The meter's tail buckets equal the ladder's closed-form stage sums.
  const EnergyReport report = measure_energy(log, model, horizon);
  Joules active = 0.0;
  Joules dozing = 0.0;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const TimePoint gap_end =
        (i + 1 < txs.size()) ? txs[i + 1].start : horizon;
    const Duration gap = gap_end - txs[i].end();
    active += params.active_extra_power * std::min(gap, params.inactivity);
    dozing += params.duty_extra_power(params.short_cycle) *
              std::clamp(gap - params.inactivity, 0.0, params.short_window);
    dozing += params.duty_extra_power(params.long_cycle) *
              std::clamp(gap - params.inactivity - params.short_window, 0.0,
                         params.long_window);
  }
  EXPECT_NEAR(report.dch_tail_energy, active, 1e-9);
  EXPECT_NEAR(report.fach_tail_energy, dozing, 1e-9);
  // And the piecewise tail_energy function agrees gap by gap.
  for (int s = 0; s < 50; ++s) {
    const Duration gap = rng.uniform(0.0, 1.5 * ladder);
    const Joules expected =
        params.active_extra_power * std::min(gap, params.inactivity) +
        params.duty_extra_power(params.short_cycle) *
            std::clamp(gap - params.inactivity, 0.0, params.short_window) +
        params.duty_extra_power(params.long_cycle) *
            std::clamp(gap - params.inactivity - params.short_window, 0.0,
                       params.long_window);
    EXPECT_NEAR(model.tail_energy(gap), expected, 1e-12)
        << "gap " << gap << " (seed " << seed << ")";
  }
}

TEST(CdrxProperty, OnlineMachineAgreesWithOfflineMeter) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    CdrxParams defaults;
    cross_check(defaults, seed);

    CdrxParams aggressive;  // fast release: tiny windows
    aggressive.inactivity = 0.2;
    aggressive.short_window = 0.08;
    aggressive.long_window = 0.5;
    aggressive.short_cycle = 0.04;
    aggressive.on_duration = 0.004;
    cross_check(aggressive, seed);

    CdrxParams no_long;  // two-phase ladder (empty extra_tail)
    no_long.long_window = 0.0;
    cross_check(no_long, seed);
  }
}

}  // namespace
}  // namespace etrain::radio
