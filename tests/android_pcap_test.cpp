#include "android/pcap.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace etrain::android {
namespace {

TEST(PcapAnalyzer, EmptyFlow) {
  PcapAnalyzer analyzer;
  const auto e = analyzer.analyze_flow("x", {});
  EXPECT_EQ(e.heartbeats, 0u);
  EXPECT_FALSE(e.fixed_cycle);
}

TEST(PcapAnalyzer, FixedCycleDetected) {
  PcapAnalyzer analyzer;
  std::vector<CapturedPacket> capture;
  for (int i = 0; i < 10; ++i) {
    capture.push_back(CapturedPacket{i * 270.0, 74, "WeChat"});
  }
  const auto e = analyzer.analyze_flow("WeChat", capture);
  EXPECT_TRUE(e.fixed_cycle);
  EXPECT_DOUBLE_EQ(e.median_cycle, 270.0);
  EXPECT_EQ(e.heartbeats, 10u);
}

TEST(PcapAnalyzer, DataPacketsDoNotDisturbCycle) {
  // Fig. 3: foreground messages/pictures have no impact on heartbeat
  // timing; the analyzer must filter them by size.
  PcapAnalyzer analyzer(1000);
  std::vector<CapturedPacket> capture;
  for (int i = 0; i < 8; ++i) {
    capture.push_back(CapturedPacket{i * 300.0, 378, "QQ"});
  }
  for (int i = 0; i < 20; ++i) {
    capture.push_back(CapturedPacket{37.0 + i * 91.0, 25000, "QQ"});
  }
  const auto e = analyzer.analyze_flow("QQ", capture);
  EXPECT_TRUE(e.fixed_cycle);
  EXPECT_DOUBLE_EQ(e.median_cycle, 300.0);
  EXPECT_EQ(e.heartbeats, 8u);
}

TEST(PcapAnalyzer, DoublingCycleReportedAsRange) {
  PcapAnalyzer analyzer;
  const auto spec = apps::netease_spec();
  std::vector<CapturedPacket> capture;
  for (const TimePoint t : spec.departures(0.0, 7200.0)) {
    capture.push_back(CapturedPacket{t, 150, "NetEase"});
  }
  const auto e = analyzer.analyze_flow("NetEase", capture);
  EXPECT_FALSE(e.fixed_cycle);
  EXPECT_DOUBLE_EQ(e.min_cycle, 60.0);
  EXPECT_DOUBLE_EQ(e.max_cycle, 480.0);
}

TEST(PcapAnalyzer, ToleratesSmallJitter) {
  PcapAnalyzer analyzer(1000, 0.05);
  Rng rng(1);
  std::vector<CapturedPacket> capture;
  for (int i = 0; i < 20; ++i) {
    capture.push_back(
        CapturedPacket{i * 240.0 + rng.uniform(-0.5, 0.5), 66, "WhatsApp"});
  }
  const auto e = analyzer.analyze_flow("WhatsApp", capture);
  EXPECT_TRUE(e.fixed_cycle);
  EXPECT_NEAR(e.median_cycle, 240.0, 1.0);
}

TEST(PcapAnalyzer, MixedCaptureSplitByFlow) {
  PcapAnalyzer analyzer;
  std::vector<CapturedPacket> capture;
  for (int i = 0; i < 6; ++i) {
    capture.push_back(CapturedPacket{i * 300.0, 378, "QQ"});
    capture.push_back(CapturedPacket{i * 270.0 + 3.0, 74, "WeChat"});
  }
  const auto estimates = analyzer.analyze(capture);
  ASSERT_EQ(estimates.size(), 2u);
  // Map order: QQ before WeChat alphabetically.
  EXPECT_EQ(estimates[0].flow, "QQ");
  EXPECT_DOUBLE_EQ(estimates[0].median_cycle, 300.0);
  EXPECT_EQ(estimates[1].flow, "WeChat");
  EXPECT_DOUBLE_EQ(estimates[1].median_cycle, 270.0);
}

TEST(SynthesizeCapture, HeartbeatsOnlyWithoutDataTraffic) {
  Rng rng(2);
  const auto capture =
      synthesize_capture(apps::wechat_spec(), 2700.0, rng, false);
  // 2700 / 270 = 10 beats at jittered times, no data packets.
  EXPECT_EQ(capture.size(), 10u);
  for (const auto& p : capture) {
    EXPECT_EQ(p.size, 74);
    EXPECT_EQ(p.flow, "WeChat");
  }
}

TEST(SynthesizeCapture, WithDataTrafficStillAnalyzable) {
  Rng rng(3);
  const auto capture =
      synthesize_capture(apps::qq_spec(), 7200.0, rng, true);
  PcapAnalyzer analyzer;
  const auto estimates = analyzer.analyze(capture);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_TRUE(estimates[0].fixed_cycle);
  EXPECT_NEAR(estimates[0].median_cycle, 300.0, 1.0);
}

TEST(CaptureCsv, RoundTrip) {
  Rng rng(6);
  const auto original =
      synthesize_capture(apps::wechat_spec(), 3600.0, rng, true);
  const auto dir = std::filesystem::temp_directory_path() / "etrain_pcap";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "capture.csv").string();
  save_capture_csv(original, path);
  const auto loaded = load_capture_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded[i].time, original[i].time, 1e-6);
    EXPECT_EQ(loaded[i].size, original[i].size);
    EXPECT_EQ(loaded[i].flow, original[i].flow);
  }
  // Analysis is identical on the loaded copy.
  PcapAnalyzer analyzer;
  const auto a = analyzer.analyze_flow("WeChat", original);
  const auto b = analyzer.analyze_flow("WeChat", loaded);
  // std::to_string keeps 6 decimals, so allow that much rounding.
  EXPECT_NEAR(a.median_cycle, b.median_cycle, 1e-5);
  EXPECT_EQ(a.fixed_cycle, b.fixed_cycle);
}

TEST(CaptureCsv, MalformedRowThrows) {
  const auto dir = std::filesystem::temp_directory_path() / "etrain_pcap";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bad.csv").string();
  {
    std::ofstream out(path);
    out << "time_s,size_bytes,flow\n1.0,100\n";
  }
  EXPECT_THROW(load_capture_csv(path), std::runtime_error);
}

// Table-1 end-to-end property: for every fixed-cycle catalog app, capture
// synthesis + analysis recovers the published cycle.
class Table1Recovery : public ::testing::TestWithParam<apps::HeartbeatSpec> {};

TEST_P(Table1Recovery, CycleRecoveredFromCapture) {
  const auto spec = GetParam();
  Rng rng(4);
  const auto capture = synthesize_capture(spec, 4 * 3600.0, rng, true);
  PcapAnalyzer analyzer;
  const auto e = analyzer.analyze_flow(spec.app_name, capture);
  EXPECT_TRUE(e.fixed_cycle) << spec.app_name;
  EXPECT_NEAR(e.median_cycle, spec.cycle, 1.0) << spec.app_name;
}

INSTANTIATE_TEST_SUITE_P(Catalog, Table1Recovery,
                         ::testing::Values(apps::wechat_spec(),
                                           apps::whatsapp_spec(),
                                           apps::qq_spec(),
                                           apps::renren_spec(),
                                           apps::apns_spec()));

}  // namespace
}  // namespace etrain::android
