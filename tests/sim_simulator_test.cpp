#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_buffer.h"

namespace etrain::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_to_exhaustion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  s.run_to_exhaustion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator s;
  TimePoint seen = -1;
  s.schedule_at(7.5, [&] { seen = s.now(); });
  s.run_to_exhaustion();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(10.0, [&] { ++fired; });
  s.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  // The 10.0 event still pending, fires on a later run.
  s.run_until(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(Simulator, EventExactlyAtHorizonFires) {
  Simulator s;
  bool fired = false;
  s.schedule_at(5.0, [&] { fired = true; });
  s.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  TimePoint inner = -1;
  s.schedule_at(2.0, [&] {
    s.schedule_after(3.0, [&] { inner = s.now(); });
  });
  s.run_to_exhaustion();
  EXPECT_DOUBLE_EQ(inner, 5.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> periodic = [&] {
    ++count;
    if (count < 5) s.schedule_after(10.0, periodic);
  };
  s.schedule_at(0.0, periodic);
  s.run_to_exhaustion();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.now(), 40.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(10.0, [] {});
  s.run_until(10.0);
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_to_exhaustion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelAfterExecutionReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(1.0, [] {});
  s.run_to_exhaustion();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator s;
  EXPECT_FALSE(s.cancel(99999));
}

TEST(Simulator, PendingEventsAccounting) {
  Simulator s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_to_exhaustion();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(Simulator, CancelledEventsAreCompactedOutOfTheHeap) {
  Simulator s;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(
        s.schedule_at(static_cast<double>(i), [&fired] { ++fired; }));
  }
  // Cancel 600: pending count reflects it immediately, and once cancelled
  // entries dominate, the heap itself is swept rather than carrying them
  // until pop.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(s.cancel(ids[i]));
  }
  EXPECT_EQ(s.pending_events(), 400u);
  EXPECT_LT(s.queue_depth(), 1000u);
  EXPECT_GE(s.queue_depth(), s.pending_events());
  s.run_to_exhaustion();
  EXPECT_EQ(fired, 400);
  EXPECT_EQ(s.events_executed(), 400u);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.queue_depth(), 0u);
}

TEST(Simulator, EventFireTraceExcludesCancelledEvents) {
  Simulator s;
  obs::TraceBuffer buffer(64);
  s.set_trace_sink(&buffer);
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(s.schedule_at(static_cast<double>(i), [] {}));
  }
  std::set<std::int64_t> cancelled;
  for (int i = 0; i < 10; i += 2) {  // cancel every other one
    s.cancel(ids[i]);
    cancelled.insert(static_cast<std::int64_t>(ids[i]));
  }
  s.run_to_exhaustion();
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 5u);
  for (const auto& e : events) {
    ASSERT_EQ(e.type, obs::EventType::kEventFire);
    EXPECT_FALSE(cancelled.contains(e.b))
        << "cancelled event id " << e.b << " was traced";
  }
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, CompactionPreservesExecutionOrder) {
  Simulator s;
  std::vector<double> times;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    const double t = static_cast<double>((i * 733) % 997);
    ids.push_back(s.schedule_at(t, [&times, t] { times.push_back(t); }));
  }
  // Cancel enough scrambled entries to trigger the sweep mid-stream.
  for (int i = 0; i < 200; i += 3) s.cancel(ids[i]);
  for (int i = 1; i < 200; i += 3) s.cancel(ids[i]);
  s.run_to_exhaustion();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
  EXPECT_EQ(times.size(), s.events_executed());
}

TEST(Simulator, DefaultOptionsMatchHistoricalCompactionPolicy) {
  Simulator s;
  EXPECT_EQ(s.options().compaction_min_heap, 64u);
  EXPECT_DOUBLE_EQ(s.options().compaction_fraction, 0.5);
}

TEST(Simulator, CustomCompactionOptionsAreHonored) {
  // An aggressive configuration sweeps sooner: min heap 8, any corpse
  // fraction above a quarter triggers.
  Simulator s(SimulatorOptions{.compaction_min_heap = 8,
                               .compaction_fraction = 0.25});
  EXPECT_EQ(s.options().compaction_min_heap, 8u);
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(s.schedule_at(static_cast<double>(i), [] {}));
  }
  // 5 corpses out of 16 > 0.25 * 16: the default policy (min heap 64)
  // would have left all five in the heap; this one must have swept.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s.cancel(ids[i]));
  EXPECT_EQ(s.queue_depth(), 11u);
  EXPECT_EQ(s.pending_events(), 11u);
}

TEST(Simulator, HeapStaysBoundedUnderCancelChurn) {
  // Regression for unbounded corpse accumulation: interleave scheduling
  // and cancelling (the alarm-coalescing pattern — every new alarm cancels
  // the previous one) far beyond the heap's live size. The raw heap
  // occupancy must stay bounded by the live count plus the compaction
  // threshold, no matter how many cancels have happened in total.
  Simulator s;
  constexpr int kLive = 40;
  std::vector<EventId> ids;
  for (int i = 0; i < kLive; ++i) {
    ids.push_back(s.schedule_at(1e6 + i, [] {}));
  }
  std::size_t max_depth = 0;
  for (int round = 0; round < 5000; ++round) {
    const int victim = (round * 7919) % kLive;
    ASSERT_TRUE(s.cancel(ids[victim]));
    ids[victim] = s.schedule_at(1e6 + round, [] {});
    max_depth = std::max(max_depth, s.queue_depth());
  }
  EXPECT_EQ(s.pending_events(), static_cast<std::size_t>(kLive));
  // Sweep threshold: corpses may reach half the heap before compaction,
  // and heaps under 64 entries never compact — so 2 * live + min-heap
  // slack is a safe ceiling; 5000 churn rounds must never exceed it.
  EXPECT_LE(max_depth, 2u * kLive + 64u);
  s.run_to_exhaustion();
  EXPECT_EQ(s.events_executed(), static_cast<std::uint64_t>(kLive));
}

TEST(Simulator, StaleHandleCannotCancelRecycledSlot) {
  // Event ids pack (generation, pool slot): after A's slot is recycled
  // into B, A's stale handle must not cancel B.
  Simulator s;
  int fired = 0;
  const EventId a = s.schedule_at(1.0, [&fired] { ++fired; });
  s.run_to_exhaustion();  // A fires; its slot returns to the free list
  EXPECT_EQ(fired, 1);
  const EventId b = s.schedule_at(2.0, [&fired] { ++fired; });
  EXPECT_NE(a, b);  // same slot, bumped generation
  EXPECT_FALSE(s.cancel(a));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_to_exhaustion();
  EXPECT_EQ(fired, 2);

  // Same via the cancel path: cancelling C must not invalidate D.
  const EventId c = s.schedule_at(3.0, [&fired] { ++fired; });
  ASSERT_TRUE(s.cancel(c));
  s.run_to_exhaustion();  // pops C's corpse, recycles its slot
  const EventId d = s.schedule_at(4.0, [&fired] { ++fired; });
  EXPECT_FALSE(s.cancel(c));
  EXPECT_NE(c, d);
  s.run_to_exhaustion();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CancelDestroysCallbackEagerly) {
  // The cancelled callback's captures are released at cancel() time, not
  // when the corpse leaves the heap.
  Simulator s;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventId id = s.schedule_at(1.0, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // the pending event keeps it alive
  ASSERT_TRUE(s.cancel(id));
  EXPECT_TRUE(watch.expired());  // released immediately on cancel
  s.run_to_exhaustion();
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  std::vector<double> times;
  // Schedule in a scrambled order; execution must be sorted.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 733) % 997);
    s.schedule_at(t, [&times, t] { times.push_back(t); });
  }
  s.run_to_exhaustion();
  ASSERT_EQ(times.size(), 1000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace etrain::sim
