#include "sim/simulator.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_buffer.h"

namespace etrain::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run_to_exhaustion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  s.run_to_exhaustion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesToEventTime) {
  Simulator s;
  TimePoint seen = -1;
  s.schedule_at(7.5, [&] { seen = s.now(); });
  s.run_to_exhaustion();
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(10.0, [&] { ++fired; });
  s.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  // The 10.0 event still pending, fires on a later run.
  s.run_until(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(Simulator, EventExactlyAtHorizonFires) {
  Simulator s;
  bool fired = false;
  s.schedule_at(5.0, [&] { fired = true; });
  s.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  TimePoint inner = -1;
  s.schedule_at(2.0, [&] {
    s.schedule_after(3.0, [&] { inner = s.now(); });
  });
  s.run_to_exhaustion();
  EXPECT_DOUBLE_EQ(inner, 5.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> periodic = [&] {
    ++count;
    if (count < 5) s.schedule_after(10.0, periodic);
  };
  s.schedule_at(0.0, periodic);
  s.run_to_exhaustion();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.now(), 40.0);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator s;
  s.schedule_at(10.0, [] {});
  s.run_until(10.0);
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_to_exhaustion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelAfterExecutionReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(1.0, [] {});
  s.run_to_exhaustion();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator s;
  EXPECT_FALSE(s.cancel(99999));
}

TEST(Simulator, PendingEventsAccounting) {
  Simulator s;
  const EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_to_exhaustion();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(Simulator, CancelledEventsAreCompactedOutOfTheHeap) {
  Simulator s;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(
        s.schedule_at(static_cast<double>(i), [&fired] { ++fired; }));
  }
  // Cancel 600: pending count reflects it immediately, and once cancelled
  // entries dominate, the heap itself is swept rather than carrying them
  // until pop.
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(s.cancel(ids[i]));
  }
  EXPECT_EQ(s.pending_events(), 400u);
  EXPECT_LT(s.queue_depth(), 1000u);
  EXPECT_GE(s.queue_depth(), s.pending_events());
  s.run_to_exhaustion();
  EXPECT_EQ(fired, 400);
  EXPECT_EQ(s.events_executed(), 400u);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.queue_depth(), 0u);
}

TEST(Simulator, EventFireTraceExcludesCancelledEvents) {
  Simulator s;
  obs::TraceBuffer buffer(64);
  s.set_trace_sink(&buffer);
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(s.schedule_at(static_cast<double>(i), [] {}));
  }
  std::set<std::int64_t> cancelled;
  for (int i = 0; i < 10; i += 2) {  // cancel every other one
    s.cancel(ids[i]);
    cancelled.insert(static_cast<std::int64_t>(ids[i]));
  }
  s.run_to_exhaustion();
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 5u);
  for (const auto& e : events) {
    ASSERT_EQ(e.type, obs::EventType::kEventFire);
    EXPECT_FALSE(cancelled.contains(e.b))
        << "cancelled event id " << e.b << " was traced";
  }
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, CompactionPreservesExecutionOrder) {
  Simulator s;
  std::vector<double> times;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    const double t = static_cast<double>((i * 733) % 997);
    ids.push_back(s.schedule_at(t, [&times, t] { times.push_back(t); }));
  }
  // Cancel enough scrambled entries to trigger the sweep mid-stream.
  for (int i = 0; i < 200; i += 3) s.cancel(ids[i]);
  for (int i = 1; i < 200; i += 3) s.cancel(ids[i]);
  s.run_to_exhaustion();
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
  EXPECT_EQ(times.size(), s.events_executed());
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  std::vector<double> times;
  // Schedule in a scrambled order; execution must be sorted.
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 733) % 997);
    s.schedule_at(t, [&times, t] { times.push_back(t); });
  }
  s.run_to_exhaustion();
  ASSERT_EQ(times.size(), 1000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace etrain::sim
