// Tests for the smaller API extensions: the extended heartbeat catalog,
// the UNREGISTER protocol, the energy-report renderer and the scenario
// validator.
#include <gtest/gtest.h>

#include "apps/heartbeat_spec.h"
#include "baselines/baseline_policy.h"
#include "exp/slotted_sim.h"
#include "net/bandwidth_trace.h"
#include "radio/energy_meter.h"
#include "system/etrain_service.h"
#include "system/protocol.h"

namespace etrain {
namespace {

// --- extended catalog ---

TEST(ExtendedCatalog, ContainsPaperCatalogPlusFour) {
  const auto extended = apps::extended_catalog();
  EXPECT_EQ(extended.size(), apps::android_catalog().size() + 4);
}

TEST(ExtendedCatalog, LiteratureCycles) {
  EXPECT_DOUBLE_EQ(apps::skype_spec().cycle, 60.0);
  EXPECT_DOUBLE_EQ(apps::facebook_spec().cycle, 60.0);
  EXPECT_DOUBLE_EQ(apps::line_spec().cycle, 300.0);
  EXPECT_DOUBLE_EQ(apps::push_email_spec().cycle, 900.0);
}

TEST(ExtendedCatalog, AllSpecsUsableAsTrains) {
  const auto schedule =
      apps::build_train_schedule(apps::extended_catalog(), 3600.0);
  EXPECT_GT(schedule.size(), 100u);  // Skype/Facebook at 60 s dominate
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_LE(schedule[i - 1].time, schedule[i].time);
  }
}

// --- UNREGISTER ---

struct ServiceFixture {
  sim::Simulator simulator;
  android::BroadcastBus bus{simulator};
  android::AlarmManager alarms{simulator};
  android::XposedRegistry xposed;
  system::EtrainService service{
      system::EtrainService::Config{.scheduler = {.theta = 1e9, .k = 20}},
      simulator, bus, alarms, xposed};
};

TEST(Unregister, FlushesQueueAndForgetsApp) {
  ServiceFixture f;
  f.service.start();
  std::vector<std::int64_t> decisions;
  f.bus.register_receiver(system::kActionTransmit,
                          [&](const android::Intent& i) {
                            decisions.push_back(
                                *i.get_int(system::kExtraPacket));
                          });
  f.simulator.schedule_at(0.1, [&] {
    android::Intent reg(system::kActionRegister);
    reg.put(system::kExtraApp, std::int64_t{0});
    reg.put(system::kExtraProfile, std::string("f1-mail"));
    f.bus.send_broadcast(reg);
  });
  // Pretend a train is active so the service would otherwise defer forever
  // (Theta is astronomically high and f1's cost stays 0).
  f.service.hook_train_app("t/Train", "sendHeartbeat", 0);
  f.simulator.schedule_at(0.15, [&] {
    android::MethodCall c;
    c.class_name = "t/Train";
    c.method_name = "sendHeartbeat";
    c.time = 0.15;
    f.xposed.invoke(c);
  });
  // Submit well after the beat so no tick sees heartbeat_now == true (a
  // train flush would bypass Theta and deliver the packet immediately).
  f.simulator.schedule_at(2.5, [&] {
    android::Intent submit(system::kActionSubmit);
    submit.put(system::kExtraApp, std::int64_t{0});
    submit.put(system::kExtraPacket, std::int64_t{9});
    submit.put(system::kExtraBytes, std::int64_t{1000});
    submit.put(system::kExtraDeadline, 600.0);
    submit.put(system::kExtraArrival, 2.5);
    f.bus.send_broadcast(submit);
  });
  f.simulator.run_until(5.0);
  EXPECT_TRUE(decisions.empty());  // deferred, as configured
  EXPECT_EQ(f.service.queues().total_size(), 1u);

  f.simulator.schedule_at(6.0, [&] {
    android::Intent unreg(system::kActionUnregister);
    unreg.put(system::kExtraApp, std::int64_t{0});
    f.bus.send_broadcast(unreg);
  });
  f.simulator.run_until(10.0);
  ASSERT_EQ(decisions.size(), 1u);  // stranded request flushed on departure
  EXPECT_EQ(decisions[0], 9);
  EXPECT_EQ(f.service.queues().total_size(), 0u);
}

TEST(Unregister, UnknownAppIsIgnored) {
  ServiceFixture f;
  f.service.start();
  f.simulator.schedule_at(0.1, [&] {
    android::Intent unreg(system::kActionUnregister);
    unreg.put(system::kExtraApp, std::int64_t{3});
    f.bus.send_broadcast(unreg);
  });
  EXPECT_NO_THROW(f.simulator.run_until(1.0));
}

// --- EnergyReport renderer ---

TEST(EnergyReportToString, MentionsKeyFields) {
  radio::TransmissionLog log;
  radio::Transmission tx;
  tx.start = 0.0;
  tx.duration = 1.0;
  tx.bytes = 1000;
  log.add(tx);
  const auto report =
      radio::measure_energy(log, radio::PowerModel::PaperUmts3G(), 100.0);
  const std::string s = radio::to_string(report);
  EXPECT_NE(s.find("network"), std::string::npos);
  EXPECT_NE(s.find("1 transmissions"), std::string::npos);
  EXPECT_NE(s.find("1 full tails"), std::string::npos);
}

// --- Scenario validator ---

experiments::Scenario minimal_scenario() {
  experiments::Scenario s;
  s.horizon = 100.0;
  s.trace = net::BandwidthTrace::constant(1000.0, 10);
  s.profiles = {&core::weibo_cost_profile()};
  core::Packet p;
  p.id = 0;
  p.app = 0;
  p.arrival = 1.0;
  p.bytes = 100;
  p.deadline = 10.0;
  s.packets = {p};
  return s;
}

TEST(ValidateScenario, AcceptsMinimal) {
  EXPECT_NO_THROW(experiments::validate_scenario(minimal_scenario()));
}

TEST(ValidateScenario, CatchesEveryDefect) {
  {
    auto s = minimal_scenario();
    s.horizon = 0.0;
    EXPECT_THROW(experiments::validate_scenario(s), std::invalid_argument);
  }
  {
    auto s = minimal_scenario();
    s.packets.push_back(s.packets[0]);  // duplicate id
    EXPECT_THROW(experiments::validate_scenario(s), std::invalid_argument);
  }
  {
    auto s = minimal_scenario();
    s.packets[0].app = 7;  // out of range
    EXPECT_THROW(experiments::validate_scenario(s), std::invalid_argument);
  }
  {
    auto s = minimal_scenario();
    s.packets[0].bytes = 0;
    EXPECT_THROW(experiments::validate_scenario(s), std::invalid_argument);
  }
  {
    auto s = minimal_scenario();
    s.packets[0].deadline = 0.0;
    EXPECT_THROW(experiments::validate_scenario(s), std::invalid_argument);
  }
  {
    auto s = minimal_scenario();
    auto p2 = s.packets[0];
    p2.id = 1;
    p2.arrival = 0.5;  // out of order
    s.packets.push_back(p2);
    EXPECT_THROW(experiments::validate_scenario(s), std::invalid_argument);
  }
  {
    auto s = minimal_scenario();
    s.trains = {{50.0, 0, 100}, {40.0, 1, 100}};  // unsorted trains
    EXPECT_THROW(experiments::validate_scenario(s), std::invalid_argument);
  }
}

TEST(ValidateScenario, RunSlottedRejectsBrokenScenario) {
  auto s = minimal_scenario();
  s.packets[0].bytes = -5;
  baselines::BaselinePolicy policy;
  EXPECT_THROW(experiments::run_slotted(s, policy), std::invalid_argument);
}

}  // namespace
}  // namespace etrain
