#include "core/etrain_scheduler.h"

#include <set>

#include <gtest/gtest.h>

namespace etrain::core {
namespace {

QueuedPacket make(PacketId id, CargoAppId app, TimePoint arrival,
                  Duration deadline, const CostProfile& profile) {
  Packet p;
  p.id = id;
  p.app = app;
  p.arrival = arrival;
  p.deadline = deadline;
  p.bytes = 1000;
  return QueuedPacket{p, &profile};
}

SlotContext slot(TimePoint t, bool heartbeat,
                 std::vector<TimePoint> upcoming = {}) {
  SlotContext ctx;
  ctx.slot_start = t;
  ctx.slot_length = 1.0;
  ctx.heartbeat_now = heartbeat;
  ctx.upcoming_heartbeats = std::move(upcoming);
  return ctx;
}

TEST(EtrainScheduler, RejectsInvalidConfig) {
  EXPECT_THROW(EtrainScheduler({.theta = -1.0}), std::invalid_argument);
  EXPECT_THROW(EtrainScheduler({.theta = 0.5, .k = 0}),
               std::invalid_argument);
}

TEST(EtrainScheduler, EmptyQueuesSelectNothing) {
  EtrainScheduler s({.theta = 0.0, .k = 20});
  WaitingQueues q(2);
  EXPECT_TRUE(s.select(slot(10.0, true), q).empty());
}

TEST(EtrainScheduler, GateClosedBelowThetaWithoutHeartbeat) {
  EtrainScheduler s({.theta = 10.0, .k = 20, .drip_defer_window = 0.0});
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  // Cost at t=30 is 0.5 < 10 and no train departs: nothing moves.
  EXPECT_TRUE(s.select(slot(30.0, false), q).empty());
}

TEST(EtrainScheduler, HeartbeatFlushesEverythingUpToK) {
  EtrainScheduler s({.theta = 1e9, .k = EtrainConfig::unlimited_k()});
  WaitingQueues q(2);
  for (PacketId id = 0; id < 6; ++id) {
    q.enqueue(make(id, static_cast<CargoAppId>(id % 2), 0.0, 60.0,
                   weibo_cost_profile()));
  }
  // Theta is astronomically high, yet a departing train opens the gate.
  const auto sel = s.select(slot(10.0, true), q);
  EXPECT_EQ(sel.size(), 6u);
}

TEST(EtrainScheduler, HeartbeatFlushIncludesZeroCostPackets) {
  EtrainScheduler s({.theta = 0.5, .k = 20});
  WaitingQueues q(1);
  // Mail before its deadline has zero cost but still boards the train.
  q.enqueue(make(1, 0, 0.0, 600.0, mail_cost_profile()));
  const auto sel = s.select(slot(5.0, true), q);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].packet, 1);
}

TEST(EtrainScheduler, KLimitsHeartbeatBatch) {
  EtrainScheduler s({.theta = 0.0, .k = 3});
  WaitingQueues q(1);
  for (PacketId id = 0; id < 10; ++id) {
    q.enqueue(make(id, 0, 0.0, 60.0, weibo_cost_profile()));
  }
  EXPECT_EQ(s.select(slot(10.0, true), q).size(), 3u);
}

TEST(EtrainScheduler, ReliefValveSendsOnePacketPerSlot) {
  EtrainScheduler s({.theta = 0.1, .k = 20, .drip_defer_window = 0.0});
  WaitingQueues q(1);
  for (PacketId id = 0; id < 5; ++id) {
    q.enqueue(make(id, 0, 0.0, 60.0, weibo_cost_profile()));
  }
  // t=30: each packet costs 0.5, P = 2.5 >= 0.1, no heartbeat -> K = 1.
  EXPECT_EQ(s.select(slot(30.0, false), q).size(), 1u);
}

TEST(EtrainScheduler, ReliefValveSkipsZeroCostPackets) {
  EtrainScheduler s({.theta = 0.0, .k = 20, .drip_defer_window = 0.0});
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 600.0, mail_cost_profile()));   // cost 0
  q.enqueue(make(2, 1, 0.0, 60.0, weibo_cost_profile()));   // cost > 0
  const auto sel = s.select(slot(30.0, false), q);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].packet, 2);  // the mail packet keeps waiting for a train
}

TEST(EtrainScheduler, DripDeferredWhenTrainImminent) {
  EtrainScheduler s({.theta = 0.1, .k = 20, .drip_defer_window = 60.0});
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  // Cost gate open (P = 0.5 >= 0.1) but a train departs in 30 s: hold.
  EXPECT_TRUE(s.select(slot(30.0, false, {60.0}), q).empty());
  // Train 90 s away (beyond the 60 s window): the relief valve fires.
  EXPECT_EQ(s.select(slot(30.0, false, {120.0}), q).size(), 1u);
  // No prediction available: fires too (no train to wait for).
  EXPECT_EQ(s.select(slot(30.0, false, {}), q).size(), 1u);
}

TEST(EtrainScheduler, GreedyPrefersHighestMarginalGain) {
  EtrainScheduler s({.theta = 0.0, .k = 1});
  WaitingQueues q(2);
  // App 0: one packet at cost ~0.99 (older). App 1: one at ~0.16.
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));   // delay 59
  q.enqueue(make(2, 1, 49.0, 60.0, weibo_cost_profile()));  // delay 10
  const auto sel = s.select(slot(59.0, true), q);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].app, 0);
  EXPECT_EQ(sel[0].packet, 1);
}

TEST(EtrainScheduler, GreedyOrderingWithinApp) {
  // Within one app, Eq. (9)'s marginal gain (remaining - selected)*phi -
  // phi^2/2 picks the largest phi first.
  EtrainScheduler s({.theta = 0.0, .k = 2});
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 30.0, 60.0, weibo_cost_profile()));  // phi ~ 0.5
  q.enqueue(make(2, 0, 0.0, 60.0, weibo_cost_profile()));   // phi ~ 1.0
  q.enqueue(make(3, 0, 54.0, 60.0, weibo_cost_profile()));  // phi ~ 0.1
  const auto sel = s.select(slot(60.0, true), q);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0].packet, 2);
  EXPECT_EQ(sel[1].packet, 1);
}

TEST(EtrainScheduler, TieBreakOrdersByArrivalThenId) {
  // Exactly tied gains resolve by (older arrival, then smaller id) — the
  // documented deterministic ordering. Mail packets before their deadline
  // all carry phi = 0, so on a heartbeat slot every gain ties at 0.
  // Ids deliberately *disagree* with arrival order: the pre-fix comparator
  // picked the smallest id among ties regardless of age (and its
  // `best_packet >= 0` guard silently disabled tie-breaking against a
  // best candidate that happened to carry a negative id).
  EtrainScheduler s({.theta = 0.0, .k = 3});
  WaitingQueues q(2);
  q.enqueue(make(7, 0, 5.0, 1000.0, mail_cost_profile()));
  q.enqueue(make(2, 0, 9.0, 1000.0, mail_cost_profile()));
  q.enqueue(make(1, 1, 5.0, 1000.0, mail_cost_profile()));
  const auto sel = s.select(slot(20.0, true), q);
  ASSERT_EQ(sel.size(), 3u);
  // Oldest arrival (5.0) first; within the 5.0 tie, id 1 beats id 7; the
  // younger packet goes last even though its id (2) is the second-smallest.
  EXPECT_EQ(sel[0].packet, 1);
  EXPECT_EQ(sel[1].packet, 7);
  EXPECT_EQ(sel[2].packet, 2);
}

TEST(EtrainScheduler, NeverSelectsSamePacketTwice) {
  EtrainScheduler s({.theta = 0.0, .k = EtrainConfig::unlimited_k()});
  WaitingQueues q(3);
  for (PacketId id = 0; id < 30; ++id) {
    q.enqueue(make(id, static_cast<CargoAppId>(id % 3), id * 1.0, 60.0,
                   weibo_cost_profile()));
  }
  const auto sel = s.select(slot(100.0, true), q);
  EXPECT_EQ(sel.size(), 30u);
  std::set<PacketId> ids;
  for (const auto& x : sel) ids.insert(x.packet);
  EXPECT_EQ(ids.size(), 30u);
}

// Property sweep: the number of selections never exceeds K(t) and all
// selected packets exist in the queues.
class SchedulerSelectionBound : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerSelectionBound, RespectsK) {
  const int k = GetParam();
  EtrainScheduler s({.theta = 0.0, .k = static_cast<std::size_t>(k)});
  WaitingQueues q(2);
  for (PacketId id = 0; id < 25; ++id) {
    q.enqueue(make(id, static_cast<CargoAppId>(id % 2), 0.0, 60.0,
                   weibo_cost_profile()));
  }
  const auto on_train = s.select(slot(30.0, true), q);
  EXPECT_LE(on_train.size(), static_cast<std::size_t>(k));
  for (const auto& sel : on_train) {
    EXPECT_NO_THROW(q.remove(sel.app, sel.packet));
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, SchedulerSelectionBound,
                         ::testing::Values(1, 2, 3, 5, 10, 24, 25, 100));

}  // namespace
}  // namespace etrain::core
