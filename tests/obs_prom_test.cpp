// Prometheus encoder tests (obs/prom.h) plus the Histogram::quantile edge
// cases the /metrics quantile companions lean on: empty histograms,
// samples confined to the overflow bucket, and the exact q=0 / q=1
// endpoints. The encoding determinism tests pin the contract
// scripts/check_prom.py and the scrape-diffing workflow rely on — two
// snapshots of the same registry state encode byte-identically, with
// families sorted by encoded name.
#include "obs/prom.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace {

using namespace etrain;

TEST(HistogramQuantile, EmptyHistogramReportsZeroEverywhere) {
  obs::Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramQuantile, AllValuesInOverflowBucketStayWithinObservedRange) {
  obs::Histogram h({1.0, 2.0});
  // Everything beyond the last bound: the overflow bucket has no upper
  // edge of its own, so the estimator must fall back to observed min/max.
  h.add(10.0);
  h.add(20.0);
  h.add(30.0);
  EXPECT_EQ(h.quantile(0.0), 10.0);
  EXPECT_EQ(h.quantile(1.0), 30.0);
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 10.0);
  EXPECT_LE(median, 30.0);
}

TEST(HistogramQuantile, EndpointsAreExactObservedExtremes) {
  obs::Histogram h({1.0, 5.0, 25.0});
  h.add(0.7);
  h.add(3.0);
  h.add(4.0);
  h.add(17.0);
  EXPECT_EQ(h.quantile(0.0), 0.7);
  EXPECT_EQ(h.quantile(1.0), 17.0);
  // Out-of-range q clamps to the endpoints rather than extrapolating.
  EXPECT_EQ(h.quantile(-1.0), 0.7);
  EXPECT_EQ(h.quantile(2.0), 17.0);
}

TEST(HistogramQuantile, SingleSampleIsEveryQuantile) {
  obs::Histogram h({1.0, 2.0});
  h.add(1.5);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 1.5) << "q = " << q;
  }
}

TEST(PromEncode, TwoSnapshotsOfTheSameRegistryEncodeByteIdentically) {
  obs::Registry registry;
  registry.counter("gateway.heartbeats").increment(7);
  registry.counter("gateway.packets_enqueued").increment(41);
  auto& h = registry.histogram("gateway.latency_s", {0.5, 1.0, 5.0});
  h.add(0.25);
  h.add(0.75);
  h.add(12.0);

  const std::string a = obs::encode_prometheus(registry.snapshot());
  const std::string b = obs::encode_prometheus(registry.snapshot());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(PromEncode, FamiliesAreSortedByEncodedName) {
  obs::Registry registry;
  // Registered deliberately out of lexicographic order.
  registry.counter("zeta.last").increment();
  registry.counter("alpha.first").increment();
  registry.histogram("mid.latency", {1.0}).add(0.5);

  const std::string text = obs::encode_prometheus(registry.snapshot());
  const std::size_t alpha = text.find("etrain_alpha_first_total");
  const std::size_t mid = text.find("etrain_mid_latency_bucket");
  const std::size_t zeta = text.find("etrain_zeta_last_total");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zeta);
}

TEST(PromEncode, CountersGetTheTotalSuffixAndDotsBecomeUnderscores) {
  obs::Registry registry;
  registry.counter("scheduler.gate-opens").increment(3);
  const std::string text = obs::encode_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE etrain_scheduler_gate_opens_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("etrain_scheduler_gate_opens_total 3\n"),
            std::string::npos);
}

TEST(PromEncode, HistogramBucketsAreCumulativeAndEndAtInf) {
  obs::Registry registry;
  auto& h = registry.histogram("q.latency", {1.0, 2.0});
  h.add(0.5);   // bucket le=1
  h.add(1.5);   // bucket le=2
  h.add(99.0);  // overflow
  const std::string text = obs::encode_prometheus(registry.snapshot());
  EXPECT_NE(text.find("etrain_q_latency_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("etrain_q_latency_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("etrain_q_latency_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("etrain_q_latency_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("etrain_q_latency_sum 101\n"), std::string::npos);
}

TEST(PromEncode, QuantileCompanionsUseTheSharedEstimator) {
  obs::Registry registry;
  auto& h = registry.histogram("q.latency", {1.0, 2.0, 4.0});
  for (const double v : {0.2, 0.4, 1.2, 1.8, 3.0, 3.5, 7.0}) h.add(v);
  const std::string text = obs::encode_prometheus(registry.snapshot());
  // The emitted values round-trip to exactly what the shared estimator
  // computes (shortest round-trippable formatting).
  const auto emitted = [&text](const std::string& name) {
    // "\n<name> " skips the "# TYPE <name> gauge" header line.
    const std::size_t pos = text.find("\n" + name + " ");
    EXPECT_NE(pos, std::string::npos) << name;
    return pos == std::string::npos
               ? -1.0
               : std::strtod(text.c_str() + pos + name.size() + 2, nullptr);
  };
  EXPECT_DOUBLE_EQ(emitted("etrain_q_latency_p50"), h.quantile(0.50));
  EXPECT_DOUBLE_EQ(emitted("etrain_q_latency_p95"), h.quantile(0.95));
  EXPECT_DOUBLE_EQ(emitted("etrain_q_latency_p99"), h.quantile(0.99));
}

TEST(PromEncode, GaugesWithSharedNameFormOneLabeledFamily) {
  const std::vector<obs::PromGauge> gauges = {
      {"gateway.rrc_sessions", 3.0, {{"state", "idle"}}, "by RRC state"},
      {"gateway.rrc_sessions", 1.0, {{"state", "fach"}}, ""},
      {"gateway.rrc_sessions", 2.0, {{"state", "dch"}}, ""},
  };
  const std::string text =
      obs::encode_prometheus(obs::MetricsSnapshot{}, gauges);
  // One TYPE header, three labeled samples, declaration order preserved.
  EXPECT_EQ(text,
            "# HELP etrain_gateway_rrc_sessions by RRC state\n"
            "# TYPE etrain_gateway_rrc_sessions gauge\n"
            "etrain_gateway_rrc_sessions{state=\"idle\"} 3\n"
            "etrain_gateway_rrc_sessions{state=\"fach\"} 1\n"
            "etrain_gateway_rrc_sessions{state=\"dch\"} 2\n");
}

TEST(PromEncode, MetricNameSanitation) {
  EXPECT_EQ(obs::prom_metric_name("gateway.latency_s"),
            "etrain_gateway_latency_s");
  EXPECT_EQ(obs::prom_metric_name("etrain_already_prefixed"),
            "etrain_already_prefixed");
  EXPECT_EQ(obs::prom_metric_name("weird name!"), "etrain_weird_name_");
}

TEST(PromEncode, SnapshotQuantileMatchesLiveHistogram) {
  obs::Registry registry;
  auto& h = registry.histogram("x.y", {1.0, 10.0, 100.0});
  for (int i = 1; i <= 50; ++i) h.add(static_cast<double>(i));
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::HistogramSnapshot* frozen = snap.histogram("x.y");
  ASSERT_NE(frozen, nullptr);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(frozen->quantile(q), h.quantile(q)) << "q = " << q;
  }
}

}  // namespace
