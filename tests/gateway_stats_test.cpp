// Live telemetry plane tests (obs/stats_server.h + the gateway wiring,
// docs/live_telemetry.md): an in-process Gateway serves /metrics, /healthz
// and /sessions from its own epoll loop over real loopback sockets while
// wire-protocol clients talk to it; SIGUSR1 dumps the flight recorder; and
// the stats plane never perturbs the session pipeline (the report stats
// match a stats-free run's contract exactly).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "baselines/registry.h"
#include "gateway/gateway.h"
#include "obs/report.h"
#include "obs/stats_server.h"
#include "system/protocol.h"

namespace {

using namespace etrain;

/// Looks up `name` in a report's (ordered, non-unique) environment pairs.
double env_value(const obs::RunReport& report, const std::string& name) {
  for (const auto& [key, value] : report.environment) {
    if (key == name) return value;
  }
  return -1.0;
}

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// First sample of `name` in a Prometheus body ("\n<name> " or
/// "\n<name>{" prefixed); -1 when absent.
double prom_value(const std::string& body, const std::string& name) {
  std::size_t pos = body.find("\n" + name + " ");
  if (pos != std::string::npos) {
    return std::strtod(body.c_str() + pos + name.size() + 2, nullptr);
  }
  return -1.0;
}

TEST(GatewayStats, EndpointsAnswerFromTheLoopWhileSessionsRun) {
  gateway::GatewayConfig config;
  config.time_scale = 100.0;
  config.stats_port = 0;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  const int port = gw.open();
  const int stats_port = gw.stats_port();
  ASSERT_GT(stats_port, 0);
  std::thread server([&] { gw.run(); });

  // /healthz answers 200 with a JSON body before any client exists.
  std::string body;
  ASSERT_EQ(obs::http_get(stats_port, "/healthz", &body), 200);
  EXPECT_NE(body.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(body.find("\"tick_lag_s\""), std::string::npos);

  // A wire client HELLOs, heartbeats and submits cargo.
  const int fd = connect_loopback(port);
  ASSERT_GE(fd, 0);
  system::wire::HelloFrame hello;
  hello.client_id = 77;
  hello.train_apps.push_back(1);
  hello.cargo_apps.push_back(
      system::wire::CargoAppSpec{2, system::wire::ProfileCode::kMail});
  const std::string hello_bytes = system::wire::encode_hello(hello);
  ASSERT_EQ(::send(fd, hello_bytes.data(), hello_bytes.size(), 0),
            static_cast<ssize_t>(hello_bytes.size()));
  const std::string hb =
      system::wire::encode_heartbeat(system::wire::HeartbeatFrame{1, 0});
  ASSERT_EQ(::send(fd, hb.data(), hb.size(), 0),
            static_cast<ssize_t>(hb.size()));
  system::wire::CargoFrame cargo;
  cargo.cargo_app = 2;
  cargo.packet_id = 1;
  cargo.bytes = 1000;
  cargo.deadline_s = 60.0;
  const std::string cargo_bytes = system::wire::encode_cargo(cargo);
  ASSERT_EQ(::send(fd, cargo_bytes.data(), cargo_bytes.size(), 0),
            static_cast<ssize_t>(cargo_bytes.size()));

  // The loop processes frames in arrival order, so poll /metrics until
  // the cargo (the last frame sent) shows — this is the live mid-session
  // scrape, and in-order processing means the earlier frames counted too.
  double enqueued = 0.0;
  std::string metrics;
  for (int attempt = 0; attempt < 200; ++attempt) {
    ASSERT_EQ(obs::http_get(stats_port, "/metrics", &metrics), 200);
    enqueued = prom_value(metrics, "etrain_gateway_packets_enqueued_total");
    if (enqueued >= 1.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(enqueued, 1.0);
  EXPECT_EQ(prom_value(metrics, "etrain_gateway_heartbeats_total"), 1.0);
  EXPECT_EQ(prom_value(metrics, "etrain_gateway_clients_accepted_total"),
            1.0);
  EXPECT_EQ(prom_value(metrics, "etrain_gateway_live_sessions"), 1.0);
  EXPECT_EQ(prom_value(metrics, "etrain_up"), 1.0);
  // The RRC occupancy family partitions the live sessions.
  EXPECT_NE(metrics.find("etrain_gateway_rrc_sessions{state=\"idle\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("etrain_gateway_rrc_sessions{state=\"dch\"}"),
            std::string::npos);
  // Heartbeat staleness gauge exists and is non-negative.
  EXPECT_GE(
      prom_value(metrics, "etrain_gateway_heartbeat_staleness_max_seconds"),
      0.0);
  // The latency histogram from the report registry is exposed too.
  EXPECT_NE(metrics.find("etrain_gateway_latency_s_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("\netrain_gateway_latency_s_p99 "),
            std::string::npos);

  // /sessions lists the one live session with its queue depth.
  ASSERT_EQ(obs::http_get(stats_port, "/sessions", &body), 200);
  EXPECT_NE(body.find("\"live_sessions\":1"), std::string::npos);
  EXPECT_NE(body.find("\"client_id\":77"), std::string::npos);
  EXPECT_NE(body.find("\"rrc\":"), std::string::npos);

  // Unknown paths 404; transport-level client sees the status.
  EXPECT_EQ(obs::http_get(stats_port, "/nope", &body), 404);

  const std::string bye = system::wire::encode_bye();
  ASSERT_EQ(::send(fd, bye.data(), bye.size(), 0),
            static_cast<ssize_t>(bye.size()));
  // The BYE flush releases the queued cargo, so ACK bytes precede the
  // EOF the gateway answers the BYE with — drain through them.
  char drain[256];
  ssize_t drained;
  while ((drained = ::recv(fd, drain, sizeof(drain), 0)) > 0) {
  }
  EXPECT_EQ(drained, 0);
  ::close(fd);

  gw.request_stop();
  server.join();

  // The stats plane observed, never perturbed: the daemon's own stats
  // partition holds exactly as in the stats-free daemon tests.
  const gateway::GatewayStats& stats = gw.stats();
  EXPECT_EQ(stats.clients_accepted, 1u);
  EXPECT_EQ(stats.heartbeats, 1u);
  EXPECT_EQ(stats.packets_enqueued, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GT(env_value(gw.build_report(), "stats_requests"), 0.0);
}

TEST(GatewayStats, Sigusr1DumpsTheFlightRecorderWithoutStopping) {
  const std::string flight_path = "gateway_stats_test.flight.json";
  std::remove(flight_path.c_str());
  gateway::GatewayConfig config;
  config.time_scale = 100.0;
  config.stats_port = 0;
  config.flight_path = flight_path;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  const int port = gw.open();
  (void)port;
  gw.install_signal_handlers();
  std::thread server([&] { gw.run(); });

  // Wait for the loop to serve, then SIGUSR1 it.
  while (obs::http_get(gw.stats_port(), "/healthz", nullptr) != 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::raise(SIGUSR1);

  // The dump lands without the loop stopping: /metrics keeps answering
  // and eventually reports the dump through the flight gauges.
  bool dumped = false;
  for (int attempt = 0; attempt < 500 && !dumped; ++attempt) {
    ASSERT_EQ(obs::http_get(gw.stats_port(), "/metrics", nullptr), 200);
    std::FILE* f = std::fopen(flight_path.c_str(), "rb");
    if (f != nullptr) {
      std::fclose(f);
      dumped = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(dumped);

  gw.request_stop();
  server.join();
  gw.restore_signal_handlers();
  EXPECT_GE(env_value(gw.build_report(), "flight_dumps"), 1.0);
  std::remove(flight_path.c_str());
}

TEST(GatewayStats, StatsPortBindFailureIsLoud) {
  // Occupy a port, then ask a gateway to serve stats on it.
  obs::StatsServer squatter;
  obs::StatsHandlers none;
  const int taken = squatter.open(0, std::move(none));
  ASSERT_GT(taken, 0);

  gateway::GatewayConfig config;
  config.stats_port = taken;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  try {
    gw.open();
    FAIL() << "open() should throw on a stats bind failure";
  } catch (const std::runtime_error& e) {
    // The message names the port so the operator knows what collided.
    EXPECT_NE(std::string(e.what()).find(std::to_string(taken)),
              std::string::npos)
        << e.what();
  }
}

TEST(GatewayStats, OversizedAndMalformedRequestsGet400) {
  gateway::GatewayConfig config;
  config.time_scale = 100.0;
  config.stats_port = 0;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  gw.open();
  std::thread server([&] { gw.run(); });
  while (obs::http_get(gw.stats_port(), "/healthz", nullptr) != 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Malformed request line.
  const int fd = connect_loopback(gw.stats_port());
  ASSERT_GE(fd, 0);
  const std::string junk = "NONSENSE\r\n";
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos);

  // POST is refused.
  const int post_fd = connect_loopback(gw.stats_port());
  ASSERT_GE(post_fd, 0);
  const std::string post = "POST /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(post_fd, post.data(), post.size(), 0),
            static_cast<ssize_t>(post.size()));
  response.clear();
  while ((n = ::recv(post_fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(post_fd);
  EXPECT_NE(response.find("405"), std::string::npos);

  gw.request_stop();
  server.join();
}

}  // namespace
