// Tests for the shared spec-string grammar (common/spec.h) and for the
// two registries built on it: malformed specs must fail loudly — and with
// the same messages — whether they name a policy or a radio.
#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/registry.h"
#include "common/spec.h"
#include "radio/model_registry.h"

namespace etrain::common {
namespace {

TEST(ParseSpec, NameOnly) {
  const ParsedSpec p = parse_spec("etrain", "policy", false);
  EXPECT_EQ(p.name, "etrain");
  EXPECT_TRUE(p.knobs.empty());
  EXPECT_TRUE(p.flags.empty());
}

TEST(ParseSpec, KnobsAndFlags) {
  const ParsedSpec p = parse_spec("3g:paper,dch_tail=6,bandwidth=2e5",
                                  "radio", /*allow_flags=*/true);
  EXPECT_EQ(p.name, "3g");
  ASSERT_EQ(p.flags.size(), 1u);
  EXPECT_EQ(p.flags[0], "paper");
  ASSERT_EQ(p.knobs.size(), 2u);
  EXPECT_DOUBLE_EQ(p.knobs.at("dch_tail"), 6.0);
  EXPECT_DOUBLE_EQ(p.knobs.at("bandwidth"), 2e5);
}

TEST(ParseSpec, NegativeAndScientificValues) {
  const ParsedSpec p =
      parse_spec("x:a=-1.5,b=1e-3,c=0", "policy", /*allow_flags=*/false);
  EXPECT_DOUBLE_EQ(p.knobs.at("a"), -1.5);
  EXPECT_DOUBLE_EQ(p.knobs.at("b"), 1e-3);
  EXPECT_DOUBLE_EQ(p.knobs.at("c"), 0.0);
}

void expect_throws_with(const std::string& spec, const std::string& domain,
                        bool allow_flags, const std::string& needle) {
  try {
    parse_spec(spec, domain, allow_flags);
    FAIL() << "no exception for '" << spec << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(ParseSpec, RejectsMalformedSpecs) {
  expect_throws_with("", "policy", false, "missing policy name");
  expect_throws_with(":theta=1", "policy", false, "missing policy name");
  expect_throws_with("etrain:", "policy", false, "empty knob assignment");
  expect_throws_with("etrain:theta=1,,k=2", "policy", false,
                     "empty knob assignment");
  expect_throws_with("etrain:theta", "policy", false,
                     "not of the form key=value");
  expect_throws_with("etrain:=1", "policy", false,
                     "not of the form key=value");
  expect_throws_with("etrain:theta=", "policy", false,
                     "not of the form key=value");
  expect_throws_with("etrain:theta=abc", "policy", false,
                     "non-numeric value 'abc'");
  expect_throws_with("etrain:theta=1,theta=2", "policy", false,
                     "duplicate knob 'theta'");
}

TEST(ParseSpec, FlagHandlingPerDomain) {
  // Bare tokens are flags only when the registry allows them.
  expect_throws_with("etrain:fast", "policy", false,
                     "not of the form key=value");
  const ParsedSpec p = parse_spec("3g:fast", "radio", true);
  ASSERT_EQ(p.flags.size(), 1u);
  EXPECT_EQ(p.flags[0], "fast");
  expect_throws_with("3g:paper,paper", "radio", true, "duplicate flag");
}

TEST(ParseSpec, DomainFlavoursTheMessage) {
  expect_throws_with("", "radio", true, "radio spec '': missing radio name");
  expect_throws_with("", "policy", false,
                     "policy spec '': missing policy name");
}

TEST(ValidSpecName, RejectsMetaCharacters) {
  EXPECT_TRUE(valid_spec_name("lte_cdrx"));
  EXPECT_TRUE(valid_spec_name("3g"));
  EXPECT_TRUE(valid_spec_name("baseline+wifi"));
  EXPECT_FALSE(valid_spec_name(""));
  EXPECT_FALSE(valid_spec_name("a:b"));
  EXPECT_FALSE(valid_spec_name("a,b"));
  EXPECT_FALSE(valid_spec_name("a=b"));
}

// Both registries surface the shared parser's messages unchanged.

TEST(RegistrySpecErrors, PolicyRegistryUsesSharedGrammar) {
  EXPECT_THROW(baselines::make_policy("etrain:theta"), std::invalid_argument);
  EXPECT_THROW(baselines::make_policy("etrain:theta=abc"),
               std::invalid_argument);
  try {
    baselines::make_policy("etrain:theta=1,theta=2");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate knob 'theta'"),
              std::string::npos);
  }
}

TEST(RegistrySpecErrors, ModelRegistryUsesSharedGrammar) {
  EXPECT_THROW(radio::make_radio_model("3g:dch_tail="),
               std::invalid_argument);
  EXPECT_THROW(radio::make_radio_model("3g:dch_tail=ten"),
               std::invalid_argument);
  try {
    radio::make_radio_model("3g:dch_tail=1,dch_tail=2");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate knob 'dch_tail'"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("radio spec"), std::string::npos);
  }
}

}  // namespace
}  // namespace etrain::common
