// Fleet-harness tests: the shards x jobs determinism contract (byte-
// identical compared report prefix for 1/2/8 shards x serial/parallel),
// the fleet-ledger == sum-of-device-meters invariant at 1e-9 J, device
// reconstruction (any device of a fleet run can be re-simulated alone),
// fleet provenance, and report_check's fleet-section validation.
#include "exp/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "baselines/registry.h"
#include "exp/run_report.h"
#include "exp/slotted_sim.h"
#include "obs/report.h"
#include "obs/report_check.h"

namespace etrain::experiments {
namespace {

/// Small enough to run many times in one test binary, large enough that
/// every activeness class is populated and the parallel phase really
/// interleaves shards.
FleetSpec small_city(std::size_t devices = 200) {
  return FleetSpec::city(devices, /*horizon=*/120.0);
}

std::string serialize(const obs::RunReport& report) {
  std::ostringstream out;
  obs::write_run_report(out, report);
  return out.str();
}

/// The compared prefix: everything before the non-compared `environment`
/// section (docs/determinism.md).
std::string compared_prefix(const std::string& json) {
  const auto pos = json.find("\"environment\"");
  return pos == std::string::npos ? json : json.substr(0, pos);
}

TEST(FleetSpec, ValidateRejectsDegenerateSpecs) {
  FleetSpec no_devices = small_city();
  no_devices.devices = 0;
  EXPECT_THROW(FleetHarness{no_devices}, std::invalid_argument);

  FleetSpec no_classes = small_city();
  no_classes.classes.clear();
  EXPECT_THROW(FleetHarness{no_classes}, std::invalid_argument);

  FleetSpec zero_weight = small_city();
  for (auto& cls : zero_weight.classes) cls.weight = 0.0;
  EXPECT_THROW(FleetHarness{zero_weight}, std::invalid_argument);

  FleetSpec empty_policy = small_city();
  empty_policy.classes[0].policy = "";
  EXPECT_THROW(FleetHarness{empty_policy}, std::invalid_argument);
}

TEST(FleetHarness, RunRejectsUnknownPolicySpec) {
  FleetSpec spec = small_city(10);
  spec.classes[0].policy = "no-such-policy";
  const FleetHarness harness(spec);
  EXPECT_THROW(harness.run(baselines::builtin_registry(), 1),
               std::invalid_argument);
}

TEST(FleetHarness, ClassAssignmentIsPureAndTracksWeights) {
  const FleetHarness harness(small_city(4000));
  std::vector<std::size_t> counts(harness.spec().classes.size(), 0);
  for (std::uint64_t d = 0; d < 4000; ++d) {
    const std::size_t cls = harness.class_of(d);
    ASSERT_LT(cls, counts.size());
    counts[cls] += 1;
    // Pure function: asking again gives the same answer.
    EXPECT_EQ(harness.class_of(d), cls);
  }
  // city()'s weights are 0.35 / 0.30 / 0.25 / 0.10; hashed assignment over
  // 4000 devices should land within a loose +-5 % absolute band.
  const double expected[4] = {0.35, 0.30, 0.25, 0.10};
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const double share = static_cast<double>(counts[c]) / 4000.0;
    EXPECT_NEAR(share, expected[c], 0.05) << "class " << c;
  }
}

TEST(FleetHarness, DeviceSeedsDifferAcrossDevicesAndStreams) {
  const FleetHarness harness(small_city());
  EXPECT_NE(harness.device_seed(0, FleetHarness::kStreamWorkload),
            harness.device_seed(1, FleetHarness::kStreamWorkload));
  EXPECT_NE(harness.device_seed(0, FleetHarness::kStreamWorkload),
            harness.device_seed(0, FleetHarness::kStreamBandwidth));
}

TEST(FleetHarness, ShardsAndJobsAreByteInvariant) {
  // The tentpole contract: same FleetSpec => byte-identical compared
  // report prefix for every shard count x serial/parallel combination.
  std::string reference;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    for (const std::size_t jobs : {1u, 3u}) {
      FleetSpec spec = small_city();
      spec.shards = shards;
      const FleetHarness harness(spec);
      const FleetResult result =
          harness.run(baselines::builtin_registry(), jobs);
      const std::string json = compared_prefix(
          serialize(report_for_fleet("fleet_invariance", spec, result)));
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference)
            << "shards=" << shards << " jobs=" << jobs;
      }
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(FleetHarness, LedgerRebillsSumOfDeviceMeters) {
  const FleetSpec spec = small_city();
  const FleetHarness harness(spec);
  const FleetResult result = harness.run(baselines::builtin_registry());

  // Every class populated, every device accounted for.
  ASSERT_EQ(result.devices, spec.devices);
  std::size_t class_devices = 0;
  for (const auto& agg : result.classes) {
    EXPECT_GT(agg.devices, 0u) << agg.name;
    class_devices += agg.devices;
  }
  EXPECT_EQ(class_devices, spec.devices);

  // The satellite invariant: the fleet ledger re-bills the sum of the
  // per-device meters to 1e-9 J (a fleet this small accumulates no
  // meaningful float error, so the unscaled tolerance holds).
  EXPECT_GT(result.device_meter_total_J, 0.0);
  EXPECT_NEAR(result.ledger.total(), result.device_meter_total_J, 1e-9);

  // Per-class energies partition the ledger total.
  double class_network = 0.0;
  for (const auto& agg : result.classes) {
    EXPECT_NEAR(agg.heartbeat_J + agg.data_J, agg.network_J, 1e-12);
    class_network += agg.network_J;
  }
  EXPECT_NEAR(class_network, result.ledger.total(), 1e-9);
}

TEST(FleetHarness, AnyDeviceCanBeReconstructedIndependently) {
  const FleetSpec spec = small_city();
  const FleetHarness harness(spec);
  const FleetResult result = harness.run(baselines::builtin_registry(), 3);

  // Re-simulate a handful of devices alone; their meters must equal the
  // fleet run's SoA columns exactly (same scenario, same policy, same
  // engine — sharding must not leak into any device's trajectory).
  for (const std::uint64_t device : {0ull, 7ull, 63ull, 199ull}) {
    const std::size_t cls = harness.class_of(device);
    const Scenario scenario = harness.device_scenario(device);
    const auto policy =
        baselines::make_policy(spec.classes[cls].policy);
    const RunMetrics metrics = run_slotted(scenario, *policy);
    EXPECT_EQ(metrics.network_energy(), result.arrays.meter_J[device])
        << "device " << device;
    EXPECT_EQ(metrics.outcomes.size(), result.arrays.packets[device])
        << "device " << device;
    EXPECT_EQ(cls, result.arrays.class_id[device]);
  }
}

TEST(FleetProvenance, DistinguishesFleetFromSingleDeviceRuns) {
  const FleetSpec spec = small_city();
  obs::RunReport fleet_report;
  describe_fleet(fleet_report, spec);

  const auto find = [](const obs::RunReport& report,
                       const std::string& key) -> std::string {
    for (const auto& [k, v] : report.provenance) {
      if (k == key) return v;
    }
    return "";
  };
  EXPECT_EQ(find(fleet_report, "workload"), "fleet");
  EXPECT_EQ(find(fleet_report, "fleet_devices"), "200");
  EXPECT_EQ(find(fleet_report, "fleet_seed"), "2015");
  EXPECT_EQ(find(fleet_report, "fleet_classes"), "4");
  EXPECT_EQ(find(fleet_report, "class.idle.policy"), "etrain:theta=1,k=20");
  EXPECT_EQ(find(fleet_report, "class.heavy.policy"), "etrain:theta=2,k=20");
  EXPECT_EQ(find(fleet_report, "class.idle.faults"), "none");
  // Shard/job counts are byte-invariant facts and must NOT be provenance.
  EXPECT_EQ(find(fleet_report, "shards"), "");
  EXPECT_EQ(find(fleet_report, "jobs"), "");

  // The single-device path declares itself too, so compare_reports can
  // never mistake one for the other.
  obs::RunReport single_report;
  describe_scenario(single_report, ScenarioBuilder().horizon(60.0).build());
  EXPECT_EQ(find(single_report, "workload"), "single-device");

  // A faulty class advertises its faults.
  FleetSpec faulty = small_city();
  faulty.classes[1].scenario.loss(0.05);
  obs::RunReport faulty_report;
  describe_fleet(faulty_report, faulty);
  EXPECT_EQ(find(faulty_report, "class.light.faults"), "enabled");
}

TEST(FleetReport, ValidatesAndTamperingIsRejected) {
  const FleetSpec spec = small_city();
  const FleetHarness harness(spec);
  const FleetResult result = harness.run(baselines::builtin_registry());
  const obs::RunReport report =
      report_for_fleet("fleet_check", spec, result);

  const auto ok = obs::check_run_report(serialize(report));
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_TRUE(ok.fleet_present);
  ASSERT_TRUE(ok.fleet_devices.has_value());
  EXPECT_EQ(*ok.fleet_devices, 200.0);
  ASSERT_TRUE(ok.fleet_meter_J.has_value());
  EXPECT_NEAR(*ok.fleet_meter_J, result.device_meter_total_J, 1e-12);
  // A fleet report has no single-run energy section; its ledger is the
  // fleet ledger.
  EXPECT_FALSE(ok.network_J.has_value());
  ASSERT_TRUE(ok.ledger_total_J.has_value());

  // Tampered meter total: the ledger cross-check must catch it.
  {
    obs::RunReport tampered = report;
    tampered.fleet->device_meter_total_J += 1.0;
    const auto bad = obs::check_run_report(serialize(tampered));
    EXPECT_FALSE(bad.ok);
  }
  // Tampered class split: heartbeat + data must partition network_J.
  {
    obs::RunReport tampered = report;
    tampered.fleet->classes[0].heartbeat_J += 0.5;
    const auto bad = obs::check_run_report(serialize(tampered));
    EXPECT_FALSE(bad.ok);
  }
  // A fleet section without a ledger is structurally invalid.
  {
    obs::RunReport tampered = report;
    tampered.ledger.reset();
    const auto bad = obs::check_run_report(serialize(tampered));
    EXPECT_FALSE(bad.ok);
  }
  // Non-fleet reports must not grow a fleet section (byte-format guard).
  {
    const std::string json = serialize(report);
    EXPECT_NE(json.find("\"fleet\":"), std::string::npos);
    obs::RunReport plain;
    plain.bench = "plain";
    plain.add_provenance("workload", "single-device");
    EXPECT_EQ(serialize(plain).find("\"fleet\":"), std::string::npos);
  }
}

TEST(FleetHarness, ShardCountResolvesAndClamps) {
  FleetSpec spec = small_city(3);
  spec.shards = 16;  // more shards than devices: clamped
  EXPECT_EQ(FleetHarness(spec).shard_count(), 3u);
  spec.shards = 2;
  EXPECT_EQ(FleetHarness(spec).shard_count(), 2u);
  spec.shards = 0;  // auto resolves to something sane
  const std::size_t auto_shards = FleetHarness(spec).shard_count();
  EXPECT_GE(auto_shards, 1u);
  EXPECT_LE(auto_shards, 3u);
}

}  // namespace
}  // namespace etrain::experiments
