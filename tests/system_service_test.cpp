// Focused tests of the EtrainService broadcast protocol and its defensive
// behaviour (malformed intents, unknown apps, scheduler ticking).
#include <gtest/gtest.h>

#include "net/bandwidth_trace.h"
#include "net/radio_link.h"
#include "system/etrain_service.h"
#include "system/protocol.h"

namespace etrain::system {
namespace {

struct ServiceFixture {
  sim::Simulator simulator;
  android::BroadcastBus bus{simulator};
  android::AlarmManager alarms{simulator};
  android::XposedRegistry xposed;
  EtrainService service{
      EtrainService::Config{.scheduler = {.theta = 0.2, .k = 20}},
      simulator, bus, alarms, xposed};

  void register_app(int app, const std::string& profile) {
    android::Intent reg(kActionRegister);
    reg.put(kExtraApp, static_cast<std::int64_t>(app));
    reg.put(kExtraProfile, profile);
    bus.send_broadcast(reg);
  }

  void submit(int app, std::int64_t packet, std::int64_t bytes,
              double deadline, double arrival) {
    android::Intent intent(kActionSubmit);
    intent.put(kExtraApp, static_cast<std::int64_t>(app));
    intent.put(kExtraPacket, packet);
    intent.put(kExtraBytes, bytes);
    intent.put(kExtraDeadline, deadline);
    intent.put(kExtraArrival, arrival);
    bus.send_broadcast(intent);
  }
};

TEST(EtrainService, RegisterAndSubmitEnqueues) {
  ServiceFixture f;
  f.service.start();
  f.simulator.schedule_at(0.1, [&] {
    f.register_app(0, "f2-weibo");
  });
  f.simulator.schedule_at(0.2, [&] { f.submit(0, 7, 2000, 60.0, 0.2); });
  f.simulator.run_until(0.5);
  EXPECT_EQ(f.service.queues().total_size(), 1u);
  EXPECT_EQ(f.service.queues().queue(0).front().packet.id, 7);
}

TEST(EtrainService, SubmitFromUnregisteredAppDropped) {
  ServiceFixture f;
  f.service.start();
  f.simulator.schedule_at(0.1, [&] { f.submit(3, 1, 1000, 60.0, 0.1); });
  f.simulator.run_until(0.5);
  EXPECT_EQ(f.service.queues().total_size(), 0u);
}

TEST(EtrainService, MalformedSubmitDropped) {
  ServiceFixture f;
  f.service.start();
  f.simulator.schedule_at(0.1, [&] { f.register_app(0, "f2-weibo"); });
  f.simulator.schedule_at(0.2, [&] {
    android::Intent intent(kActionSubmit);
    intent.put(kExtraApp, std::int64_t{0});
    // Missing packet/bytes/deadline/arrival.
    f.bus.send_broadcast(intent);
  });
  f.simulator.run_until(0.5);
  EXPECT_EQ(f.service.queues().total_size(), 0u);
}

TEST(EtrainService, UnknownProfileThrowsOnDelivery) {
  ServiceFixture f;
  f.service.start();
  f.simulator.schedule_at(0.1, [&] { f.register_app(0, "f9-nonsense"); });
  EXPECT_THROW(f.simulator.run_until(0.5), std::invalid_argument);
}

TEST(EtrainService, OutOfRangeAppIdThrows) {
  ServiceFixture f;
  f.service.start();
  f.simulator.schedule_at(0.1, [&] { f.register_app(999, "f2-weibo"); });
  EXPECT_THROW(f.simulator.run_until(0.5), std::out_of_range);
}

TEST(EtrainService, FlushesWhenNoTrainRuns) {
  // Sec. V-3: with no train app running, queued cargo must not wait.
  ServiceFixture f;
  f.service.start();
  std::vector<std::int64_t> decisions;
  f.bus.register_receiver(kActionTransmit, [&](const android::Intent& i) {
    decisions.push_back(*i.get_int(kExtraPacket));
  });
  f.simulator.schedule_at(0.1, [&] { f.register_app(0, "f1-mail"); });
  f.simulator.schedule_at(0.2, [&] { f.submit(0, 42, 5000, 600.0, 0.2); });
  f.simulator.run_until(5.0);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0], 42);
  EXPECT_EQ(f.service.queues().total_size(), 0u);
}

TEST(EtrainService, DefersForTrainWhenOneIsActive) {
  ServiceFixture f;
  f.service.start();
  std::vector<TimePoint> decision_times;
  f.bus.register_receiver(kActionTransmit, [&](const android::Intent&) {
    decision_times.push_back(f.simulator.now());
  });
  // Hook a fake train app and beat twice so the monitor learns a 300 s
  // cycle with the next beat predicted at 610.
  f.service.hook_train_app("fake/Train", "sendHeartbeat", 0);
  const auto beat = [&](TimePoint t) {
    f.simulator.schedule_at(t, [&f, t] {
      android::MethodCall call;
      call.class_name = "fake/Train";
      call.method_name = "sendHeartbeat";
      call.time = t;
      f.xposed.invoke(call);
    });
  };
  beat(10.0);
  beat(310.0);
  f.simulator.schedule_at(311.0, [&] { f.register_app(0, "f1-mail"); });
  // Mail packet with a long deadline arrives mid-cycle: it should wait for
  // the predicted 610 s train rather than leave immediately.
  f.simulator.schedule_at(350.0, [&] { f.submit(0, 1, 5000, 600.0, 350.0); });
  beat(610.0);
  f.simulator.run_until(700.0);
  ASSERT_EQ(decision_times.size(), 1u);
  EXPECT_GT(decision_times[0], 609.0);
  EXPECT_LT(decision_times[0], 613.0);
}

TEST(EtrainService, TickCountsAdvance) {
  ServiceFixture f;
  f.service.start();
  f.simulator.run_until(10.0);
  EXPECT_GE(f.service.ticks(), 9u);
}

TEST(EtrainService, DuplicateStartIsIdempotent) {
  ServiceFixture f;
  f.service.start();
  f.service.start();
  f.simulator.run_until(3.0);
  // A duplicated tick alarm would double the tick count.
  EXPECT_LE(f.service.ticks(), 3u);
}

}  // namespace
}  // namespace etrain::system
