#include "apps/heartbeat_spec.h"

#include <gtest/gtest.h>

#include "apps/train_schedule.h"

namespace etrain::apps {
namespace {

TEST(HeartbeatSpec, Table1Cycles) {
  EXPECT_DOUBLE_EQ(wechat_spec().cycle, 270.0);
  EXPECT_DOUBLE_EQ(whatsapp_spec().cycle, 240.0);
  EXPECT_DOUBLE_EQ(qq_spec().cycle, 300.0);
  EXPECT_DOUBLE_EQ(renren_spec().cycle, 300.0);
  EXPECT_DOUBLE_EQ(netease_spec().cycle, 60.0);
  EXPECT_DOUBLE_EQ(netease_spec().cycle_cap, 480.0);
  EXPECT_DOUBLE_EQ(apns_spec().cycle, 1800.0);
}

TEST(HeartbeatSpec, MeasuredHeartbeatSizes) {
  // Sec. VI-A: QQ 378 B, WeChat 74 B, WhatsApp 66 B.
  EXPECT_EQ(qq_spec().heartbeat_bytes, 378);
  EXPECT_EQ(wechat_spec().heartbeat_bytes, 74);
  EXPECT_EQ(whatsapp_spec().heartbeat_bytes, 66);
}

TEST(HeartbeatSpec, FixedBeatTimesFollowEq5) {
  const auto spec = wechat_spec();
  // t_s(h_{i,j}) = t_s(h_{i,0}) + cycle_i * j.
  EXPECT_DOUBLE_EQ(spec.beat_time(0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(spec.beat_time(1, 100.0), 370.0);
  EXPECT_DOUBLE_EQ(spec.beat_time(10, 100.0), 100.0 + 2700.0);
}

TEST(HeartbeatSpec, NegativeIndexThrows) {
  EXPECT_THROW(qq_spec().beat_time(-1, 0.0), std::invalid_argument);
}

TEST(HeartbeatSpec, DoublingCycleProgression) {
  // NetEase: initial 60 s, doubles after every 6 heartbeats, caps at 480 s
  // (Sec. II-B / Fig. 3(d)).
  const auto spec = netease_spec();
  for (int j = 1; j <= 6; ++j) {
    EXPECT_DOUBLE_EQ(spec.cycle_before_beat(j), 60.0) << "beat " << j;
  }
  for (int j = 7; j <= 12; ++j) {
    EXPECT_DOUBLE_EQ(spec.cycle_before_beat(j), 120.0) << "beat " << j;
  }
  for (int j = 13; j <= 18; ++j) {
    EXPECT_DOUBLE_EQ(spec.cycle_before_beat(j), 240.0) << "beat " << j;
  }
  for (int j = 19; j <= 40; ++j) {
    EXPECT_DOUBLE_EQ(spec.cycle_before_beat(j), 480.0) << "beat " << j;
  }
}

TEST(HeartbeatSpec, DoublingBeatTimesAccumulate) {
  const auto spec = netease_spec();
  EXPECT_DOUBLE_EQ(spec.beat_time(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(spec.beat_time(6, 0.0), 360.0);        // six 60 s gaps
  EXPECT_DOUBLE_EQ(spec.beat_time(12, 0.0), 360.0 + 720.0);
}

TEST(HeartbeatSpec, DeparturesWithinHorizon) {
  const auto spec = qq_spec();  // 300 s cycle
  const auto times = spec.departures(0.0, 3600.0);
  ASSERT_EQ(times.size(), 12u);  // 0, 300, ..., 3300
  EXPECT_DOUBLE_EQ(times.front(), 0.0);
  EXPECT_DOUBLE_EQ(times.back(), 3300.0);
}

TEST(HeartbeatSpec, DeparturesRespectFirstBeatOffset) {
  const auto spec = qq_spec();
  const auto times = spec.departures(100.0, 700.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 100.0);
  EXPECT_DOUBLE_EQ(times[1], 400.0);
}

TEST(HeartbeatSpec, AggregateRateRoughlyOncePerMinute) {
  // Fig. 1(b): with the three IM apps running, heartbeats are "frequent,
  // once a minute on average" — our catalog gives one per ~89 s, the same
  // order of magnitude.
  const auto events = build_train_schedule(default_train_specs(), 3600.0);
  EXPECT_GE(events.size(), 40u);
  EXPECT_LE(events.size(), 70u);
}

TEST(TrainSchedule, MergedAndSorted) {
  const auto events =
      build_train_schedule(default_train_specs(), {0.0, 5.0, 10.0}, 1000.0);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  // First three beats: QQ@0, WeChat@5, WhatsApp@10.
  EXPECT_EQ(events[0].train, 0);
  EXPECT_DOUBLE_EQ(events[0].time, 0.0);
  EXPECT_EQ(events[0].bytes, 378);
  EXPECT_EQ(events[1].train, 1);
  EXPECT_EQ(events[2].train, 2);
}

TEST(TrainSchedule, SizeMismatchThrows) {
  EXPECT_THROW(build_train_schedule(default_train_specs(), {0.0}, 100.0),
               std::invalid_argument);
}

TEST(TrainSchedule, DepartureTimesDeduplicated) {
  // Two trains with identical cycles and offsets produce coincident beats;
  // departure_times collapses them.
  const std::vector<HeartbeatSpec> specs{qq_spec(), qq_spec()};
  const auto events = build_train_schedule(specs, {0.0, 0.0}, 1000.0);
  EXPECT_EQ(events.size(), 8u);  // 2 apps x 4 beats
  const auto times = departure_times(events);
  EXPECT_EQ(times.size(), 4u);
}

TEST(TrainSchedule, EmptySpecListYieldsEmptySchedule) {
  const auto events = build_train_schedule({}, 1000.0);
  EXPECT_TRUE(events.empty());
  EXPECT_TRUE(departure_times(events).empty());
}

}  // namespace
}  // namespace etrain::apps
