#include "radio/power_model.h"

#include <gtest/gtest.h>

namespace etrain::radio {
namespace {

// The paper's measured parameters (Sec. VI-A "other simulation settings").
constexpr double kPd = 0.700;   // W above idle, DCH
constexpr double kPf = 0.450;   // W above idle, FACH
constexpr double kDd = 10.0;    // s, delta_D
constexpr double kDf = 7.5;     // s, delta_F

TEST(PowerModel, PaperPresetMatchesMeasuredParameters) {
  const PowerModel m = PowerModel::PaperUmts3G();
  EXPECT_DOUBLE_EQ(m.dch_extra_power, kPd);
  EXPECT_DOUBLE_EQ(m.fach_extra_power, kPf);
  EXPECT_DOUBLE_EQ(m.dch_tail, kDd);
  EXPECT_DOUBLE_EQ(m.fach_tail, kDf);
  EXPECT_DOUBLE_EQ(m.idle_to_dch_delay, 0.0);
  EXPECT_DOUBLE_EQ(m.fach_to_dch_delay, 0.0);
}

TEST(PowerModel, TailTimeIsSumOfTimers) {
  const PowerModel m = PowerModel::PaperUmts3G();
  EXPECT_DOUBLE_EQ(m.tail_time(), 17.5);
}

TEST(PowerModel, FullTailEnergyMatchesPaperMagnitude) {
  // 0.7*10 + 0.45*7.5 = 10.375 J; the paper reports a measured per-heartbeat
  // tail of about 10.91 J (Sec. II-D) — same magnitude.
  const PowerModel m = PowerModel::PaperUmts3G();
  EXPECT_DOUBLE_EQ(m.full_tail_energy(), 10.375);
  EXPECT_NEAR(m.full_tail_energy(), 10.91, 0.6);
}

// --- the four cases of E_tail(Delta), Sec. III-A ---

TEST(PowerModel, TailEnergyCase1_NonPositiveGapIsFree) {
  const PowerModel m = PowerModel::PaperUmts3G();
  EXPECT_DOUBLE_EQ(m.tail_energy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.tail_energy(-3.0), 0.0);
}

TEST(PowerModel, TailEnergyCase2_WithinDchLinearInGap) {
  const PowerModel m = PowerModel::PaperUmts3G();
  EXPECT_DOUBLE_EQ(m.tail_energy(1.0), kPd * 1.0);
  EXPECT_DOUBLE_EQ(m.tail_energy(4.0), kPd * 4.0);
  EXPECT_DOUBLE_EQ(m.tail_energy(kDd), kPd * kDd);  // boundary
}

TEST(PowerModel, TailEnergyCase3_WithinFach) {
  const PowerModel m = PowerModel::PaperUmts3G();
  EXPECT_DOUBLE_EQ(m.tail_energy(12.0), kPd * kDd + kPf * 2.0);
  EXPECT_DOUBLE_EQ(m.tail_energy(kDd + kDf), kPd * kDd + kPf * kDf);
}

TEST(PowerModel, TailEnergyCase4_BeyondTailSaturates) {
  const PowerModel m = PowerModel::PaperUmts3G();
  EXPECT_DOUBLE_EQ(m.tail_energy(18.0), m.full_tail_energy());
  EXPECT_DOUBLE_EQ(m.tail_energy(1e9), m.full_tail_energy());
}

TEST(PowerModel, TailEnergyContinuousAtBoundaries) {
  const PowerModel m = PowerModel::PaperUmts3G();
  const double eps = 1e-9;
  EXPECT_NEAR(m.tail_energy(kDd - eps), m.tail_energy(kDd + eps), 1e-6);
  EXPECT_NEAR(m.tail_energy(kDd + kDf - eps), m.tail_energy(kDd + kDf + eps),
              1e-6);
  EXPECT_NEAR(m.tail_energy(eps), 0.0, 1e-6);
}

// Property sweep: E_tail is nondecreasing and bounded by the full tail.
class TailEnergyMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(TailEnergyMonotonicity, NondecreasingAndBounded) {
  const PowerModel m = PowerModel::PaperUmts3G();
  const double gap = GetParam();
  EXPECT_GE(m.tail_energy(gap), 0.0);
  EXPECT_LE(m.tail_energy(gap), m.full_tail_energy() + 1e-12);
  EXPECT_LE(m.tail_energy(gap), m.tail_energy(gap + 0.25) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(GapSweep, TailEnergyMonotonicity,
                         ::testing::Values(-5.0, 0.0, 0.1, 1.0, 2.5, 5.0, 7.5,
                                           9.99, 10.0, 10.01, 12.0, 15.0, 17.4,
                                           17.5, 17.6, 30.0, 600.0));

TEST(PowerModel, ExtraPowerPerState) {
  const PowerModel m = PowerModel::PaperUmts3G();
  EXPECT_DOUBLE_EQ(m.extra_power(RrcState::kIdle), 0.0);
  EXPECT_DOUBLE_EQ(m.extra_power(RrcState::kFach), kPf);
  EXPECT_DOUBLE_EQ(m.extra_power(RrcState::kDch), kPd);
}

TEST(PowerModel, RealisticPresetHasPromotionDelays) {
  const PowerModel m = PowerModel::Realistic3G();
  EXPECT_GT(m.idle_to_dch_delay, 0.0);
  EXPECT_GT(m.fach_to_dch_delay, 0.0);
  EXPECT_GT(m.idle_to_dch_delay, m.fach_to_dch_delay);
}

TEST(PowerModel, LtePresetHasShorterTailThan3G) {
  const PowerModel lte = PowerModel::LteDrx();
  const PowerModel umts = PowerModel::PaperUmts3G();
  EXPECT_LT(lte.tail_time(), umts.tail_time());
  EXPECT_GT(lte.tail_energy(lte.tail_time()), 0.0);
}

TEST(PowerModel, StateNames) {
  EXPECT_EQ(to_string(RrcState::kIdle), "IDLE");
  EXPECT_EQ(to_string(RrcState::kFach), "FACH");
  EXPECT_EQ(to_string(RrcState::kDch), "DCH");
}

}  // namespace
}  // namespace etrain::radio
