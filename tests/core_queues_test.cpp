#include "core/queues.h"

#include <gtest/gtest.h>

namespace etrain::core {
namespace {

QueuedPacket make(PacketId id, CargoAppId app, TimePoint arrival,
                  Duration deadline, const CostProfile& profile,
                  Bytes bytes = 1000) {
  Packet p;
  p.id = id;
  p.app = app;
  p.arrival = arrival;
  p.deadline = deadline;
  p.bytes = bytes;
  return QueuedPacket{p, &profile};
}

TEST(WaitingQueues, StartsEmpty) {
  WaitingQueues q(3);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_size(), 0u);
  EXPECT_EQ(q.app_count(), 3);
  EXPECT_DOUBLE_EQ(q.instantaneous_cost(100.0), 0.0);
}

TEST(WaitingQueues, EnqueueAndSizeAccounting) {
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile(), 500));
  q.enqueue(make(2, 1, 0.0, 60.0, weibo_cost_profile(), 700));
  q.enqueue(make(3, 1, 0.0, 60.0, weibo_cost_profile(), 300));
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.total_size(), 3u);
  EXPECT_EQ(q.total_bytes(), 1500);
  EXPECT_EQ(q.queue(0).size(), 1u);
  EXPECT_EQ(q.queue(1).size(), 2u);
}

TEST(WaitingQueues, RejectsBadEnqueue) {
  WaitingQueues q(1);
  EXPECT_THROW(q.enqueue(make(1, 5, 0.0, 60.0, weibo_cost_profile())),
               std::invalid_argument);
  Packet p;
  p.app = 0;
  EXPECT_THROW(q.enqueue(QueuedPacket{p, nullptr}), std::invalid_argument);
}

TEST(WaitingQueues, InstantaneousCostSumsProfiles) {
  WaitingQueues q(2);
  // Weibo f2 at delay 30/60 -> 0.5; cloud f3 at delay 30/120 -> 0.25.
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  q.enqueue(make(2, 1, 0.0, 120.0, cloud_cost_profile()));
  EXPECT_DOUBLE_EQ(q.app_cost(0, 30.0), 0.5);
  EXPECT_DOUBLE_EQ(q.app_cost(1, 30.0), 0.25);
  EXPECT_DOUBLE_EQ(q.instantaneous_cost(30.0), 0.75);
}

TEST(WaitingQueues, SpeculativeCostUsesNextSlot) {
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 10.0, 60.0, weibo_cost_profile()));
  // At t=40 the cost is 30/60 = 0.5; speculative (next slot at 41) = 31/60.
  EXPECT_DOUBLE_EQ(q.app_cost(0, 40.0), 0.5);
  EXPECT_NEAR(q.app_speculative_cost(0, 41.0), 31.0 / 60.0, 1e-12);
}

TEST(WaitingQueues, RemoveSpecificPacket) {
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  q.enqueue(make(2, 0, 5.0, 60.0, weibo_cost_profile()));
  const QueuedPacket removed = q.remove(0, 1);
  EXPECT_EQ(removed.packet.id, 1);
  EXPECT_EQ(q.total_size(), 1u);
  EXPECT_EQ(q.queue(0).front().packet.id, 2);
}

TEST(WaitingQueues, RemoveMissingThrows) {
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  EXPECT_THROW(q.remove(0, 99), std::invalid_argument);
  q.remove(0, 1);
  EXPECT_THROW(q.remove(0, 1), std::invalid_argument);  // already removed
}

TEST(WaitingQueues, DrainAllEmptiesEverything) {
  WaitingQueues q(3);
  for (PacketId id = 0; id < 9; ++id) {
    q.enqueue(make(id, static_cast<CargoAppId>(id % 3), 0.0, 60.0,
                   weibo_cost_profile()));
  }
  const auto drained = q.drain_all();
  EXPECT_EQ(drained.size(), 9u);
  EXPECT_TRUE(q.empty());
}

TEST(WaitingQueues, OldestArrival) {
  WaitingQueues q(2);
  EXPECT_EQ(q.oldest_arrival(0), kTimeInfinity);
  q.enqueue(make(1, 0, 50.0, 60.0, weibo_cost_profile()));
  q.enqueue(make(2, 0, 20.0, 60.0, weibo_cost_profile()));
  EXPECT_DOUBLE_EQ(q.oldest_arrival(0), 20.0);
  EXPECT_EQ(q.oldest_arrival(1), kTimeInfinity);
}

// --------------------------------------------------------------------------
// Incremental instantaneous_cost: the cached/extrapolated value must track
// the reference full recomputation within 1e-9 through repeated gate-style
// queries, affine breakpoints, and structural invalidation.

TEST(WaitingQueuesIncrementalCost, MatchesRecomputeAcrossSlotScan) {
  WaitingQueues q(3);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  q.enqueue(make(2, 1, 5.0, 120.0, cloud_cost_profile()));
  q.enqueue(make(3, 2, 10.0, 30.0, mail_cost_profile()));
  // Slot-by-slot scan like the scheduler's gate: every query extrapolated
  // or re-anchored, always within 1e-9 of the reference sum.
  for (TimePoint t = 10.0; t < 400.0; t += 1.0) {
    EXPECT_NEAR(q.instantaneous_cost(t), q.recompute_instantaneous_cost(t),
                1e-9)
        << "t=" << t;
  }
}

TEST(WaitingQueuesIncrementalCost, TracksWeiboJumpAtDeadline) {
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  // Anchor inside the ramp, then query past the deadline: the cached
  // affine window must end at the jump, not extrapolate the ramp through
  // it (f2 jumps from 1 to the constant 2 at the deadline).
  EXPECT_NEAR(q.instantaneous_cost(30.0), 0.5, 1e-12);
  EXPECT_NEAR(q.instantaneous_cost(59.0), 59.0 / 60.0, 1e-12);
  EXPECT_NEAR(q.instantaneous_cost(61.0), 2.0, 1e-12);
  EXPECT_NEAR(q.instantaneous_cost(300.0), 2.0, 1e-12);
}

TEST(WaitingQueuesIncrementalCost, TracksMailAndCloudBreakpoints) {
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 50.0, mail_cost_profile()));
  q.enqueue(make(2, 1, 0.0, 50.0, cloud_cost_profile()));
  for (const TimePoint t :
       {1.0, 25.0, 49.0, 49.999, 50.0, 50.001, 60.0, 200.0}) {
    EXPECT_NEAR(q.instantaneous_cost(t), q.recompute_instantaneous_cost(t),
                1e-9)
        << "t=" << t;
  }
}

TEST(WaitingQueuesIncrementalCost, EnqueueAndRemoveInvalidate) {
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  EXPECT_NEAR(q.instantaneous_cost(30.0), 0.5, 1e-12);  // cache anchored
  q.enqueue(make(2, 1, 0.0, 60.0, weibo_cost_profile()));
  EXPECT_NEAR(q.instantaneous_cost(30.0), 1.0, 1e-12);  // sees the arrival
  q.remove(0, 1);
  EXPECT_NEAR(q.instantaneous_cost(30.0), 0.5, 1e-12);  // sees the removal
  q.drain_all();
  EXPECT_DOUBLE_EQ(q.instantaneous_cost(30.0), 0.0);
}

TEST(WaitingQueuesIncrementalCost, BackwardQueryReanchors) {
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  EXPECT_NEAR(q.instantaneous_cost(40.0), 40.0 / 60.0, 1e-12);
  // The cache extrapolates forward only; asking about an earlier time must
  // re-anchor, never extrapolate with a negative offset... and still be
  // exact.
  EXPECT_NEAR(q.instantaneous_cost(10.0), 10.0 / 60.0, 1e-12);
}

/// A profile that opts out of the affine contract: quadratic growth, no
/// affine_segment override. Queues holding it must fall back to full
/// recomputation on every query — and stay correct.
class QuadraticProfile final : public CostProfile {
 public:
  double cost(Duration delay, Duration deadline) const override {
    if (delay <= 0.0) return 0.0;
    const double x = delay / deadline;
    return x * x;
  }
  std::string name() const override { return "quadratic-test"; }
};

TEST(WaitingQueuesIncrementalCost, NonAffineProfileDisablesCacheSafely) {
  static const QuadraticProfile quad;
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  q.enqueue(make(2, 1, 0.0, 60.0, quad));
  for (TimePoint t = 1.0; t < 150.0; t += 1.0) {
    const double expect =
        weibo_cost_profile().cost(t, 60.0) + quad.cost(t, 60.0);
    EXPECT_NEAR(q.instantaneous_cost(t), expect, 1e-12) << "t=" << t;
  }
}

}  // namespace
}  // namespace etrain::core
