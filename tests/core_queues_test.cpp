#include "core/queues.h"

#include <gtest/gtest.h>

namespace etrain::core {
namespace {

QueuedPacket make(PacketId id, CargoAppId app, TimePoint arrival,
                  Duration deadline, const CostProfile& profile,
                  Bytes bytes = 1000) {
  Packet p;
  p.id = id;
  p.app = app;
  p.arrival = arrival;
  p.deadline = deadline;
  p.bytes = bytes;
  return QueuedPacket{p, &profile};
}

TEST(WaitingQueues, StartsEmpty) {
  WaitingQueues q(3);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_size(), 0u);
  EXPECT_EQ(q.app_count(), 3);
  EXPECT_DOUBLE_EQ(q.instantaneous_cost(100.0), 0.0);
}

TEST(WaitingQueues, EnqueueAndSizeAccounting) {
  WaitingQueues q(2);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile(), 500));
  q.enqueue(make(2, 1, 0.0, 60.0, weibo_cost_profile(), 700));
  q.enqueue(make(3, 1, 0.0, 60.0, weibo_cost_profile(), 300));
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.total_size(), 3u);
  EXPECT_EQ(q.total_bytes(), 1500);
  EXPECT_EQ(q.queue(0).size(), 1u);
  EXPECT_EQ(q.queue(1).size(), 2u);
}

TEST(WaitingQueues, RejectsBadEnqueue) {
  WaitingQueues q(1);
  EXPECT_THROW(q.enqueue(make(1, 5, 0.0, 60.0, weibo_cost_profile())),
               std::invalid_argument);
  Packet p;
  p.app = 0;
  EXPECT_THROW(q.enqueue(QueuedPacket{p, nullptr}), std::invalid_argument);
}

TEST(WaitingQueues, InstantaneousCostSumsProfiles) {
  WaitingQueues q(2);
  // Weibo f2 at delay 30/60 -> 0.5; cloud f3 at delay 30/120 -> 0.25.
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  q.enqueue(make(2, 1, 0.0, 120.0, cloud_cost_profile()));
  EXPECT_DOUBLE_EQ(q.app_cost(0, 30.0), 0.5);
  EXPECT_DOUBLE_EQ(q.app_cost(1, 30.0), 0.25);
  EXPECT_DOUBLE_EQ(q.instantaneous_cost(30.0), 0.75);
}

TEST(WaitingQueues, SpeculativeCostUsesNextSlot) {
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 10.0, 60.0, weibo_cost_profile()));
  // At t=40 the cost is 30/60 = 0.5; speculative (next slot at 41) = 31/60.
  EXPECT_DOUBLE_EQ(q.app_cost(0, 40.0), 0.5);
  EXPECT_NEAR(q.app_speculative_cost(0, 41.0), 31.0 / 60.0, 1e-12);
}

TEST(WaitingQueues, RemoveSpecificPacket) {
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  q.enqueue(make(2, 0, 5.0, 60.0, weibo_cost_profile()));
  const QueuedPacket removed = q.remove(0, 1);
  EXPECT_EQ(removed.packet.id, 1);
  EXPECT_EQ(q.total_size(), 1u);
  EXPECT_EQ(q.queue(0).front().packet.id, 2);
}

TEST(WaitingQueues, RemoveMissingThrows) {
  WaitingQueues q(1);
  q.enqueue(make(1, 0, 0.0, 60.0, weibo_cost_profile()));
  EXPECT_THROW(q.remove(0, 99), std::invalid_argument);
  q.remove(0, 1);
  EXPECT_THROW(q.remove(0, 1), std::invalid_argument);  // already removed
}

TEST(WaitingQueues, DrainAllEmptiesEverything) {
  WaitingQueues q(3);
  for (PacketId id = 0; id < 9; ++id) {
    q.enqueue(make(id, static_cast<CargoAppId>(id % 3), 0.0, 60.0,
                   weibo_cost_profile()));
  }
  const auto drained = q.drain_all();
  EXPECT_EQ(drained.size(), 9u);
  EXPECT_TRUE(q.empty());
}

TEST(WaitingQueues, OldestArrival) {
  WaitingQueues q(2);
  EXPECT_EQ(q.oldest_arrival(0), kTimeInfinity);
  q.enqueue(make(1, 0, 50.0, 60.0, weibo_cost_profile()));
  q.enqueue(make(2, 0, 20.0, 60.0, weibo_cost_profile()));
  EXPECT_DOUBLE_EQ(q.oldest_arrival(0), 20.0);
  EXPECT_EQ(q.oldest_arrival(1), kTimeInfinity);
}

}  // namespace
}  // namespace etrain::core
