// ScenarioBuilder: the fluent scenario-assembly API the benches and
// examples migrated to. A bare builder must reproduce make_scenario()
// exactly; every knob must land in the built product; build() validates.
#include "exp/scenario_builder.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace etrain::experiments {
namespace {

TEST(ScenarioBuilderTest, DefaultBuildMatchesMakeScenario) {
  const Scenario built = ScenarioBuilder().build();
  const Scenario standard = make_scenario(ScenarioConfig{});

  EXPECT_DOUBLE_EQ(built.horizon, standard.horizon);
  ASSERT_EQ(built.packets.size(), standard.packets.size());
  ASSERT_EQ(built.trains.size(), standard.trains.size());
  for (std::size_t i = 0; i < built.packets.size(); ++i) {
    EXPECT_DOUBLE_EQ(built.packets[i].arrival, standard.packets[i].arrival);
    EXPECT_EQ(built.packets[i].bytes, standard.packets[i].bytes);
  }
  EXPECT_FALSE(built.faults.enabled());
}

TEST(ScenarioBuilderTest, GeneratorKnobsForwardToScenarioConfig) {
  const Scenario s = ScenarioBuilder()
                         .lambda(0.04)
                         .trains(1)
                         .horizon(3600.0)
                         .workload_seed(9)
                         .shared_deadline(45.0)
                         .model(radio::PowerModel::PaperSimulation())
                         .build();
  EXPECT_DOUBLE_EQ(s.horizon, 3600.0);

  ScenarioConfig cfg;
  cfg.lambda = 0.04;
  cfg.train_count = 1;
  cfg.horizon = 3600.0;
  cfg.workload_seed = 9;
  cfg.shared_deadline = 45.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  const Scenario expected = make_scenario(cfg);
  ASSERT_EQ(s.packets.size(), expected.packets.size());
  ASSERT_EQ(s.trains.size(), expected.trains.size());
  for (const auto& p : s.packets) {
    EXPECT_LE(p.arrival, 3600.0);
  }
}

TEST(ScenarioBuilderTest, FaultKnobsComposeIntoThePlan) {
  const Scenario s = ScenarioBuilder()
                         .loss(0.1)
                         .heartbeat_jitter(5.0)
                         .heartbeat_drops(0.02)
                         .fault_seed(99)
                         .build();
  EXPECT_TRUE(s.faults.enabled());
  EXPECT_DOUBLE_EQ(s.faults.loss_probability, 0.1);
  EXPECT_DOUBLE_EQ(s.faults.heartbeat_jitter_sigma, 5.0);
  EXPECT_DOUBLE_EQ(s.faults.heartbeat_drop_probability, 0.02);
  EXPECT_EQ(s.faults.seed, 99u);
}

TEST(ScenarioBuilderTest, FaultsPlanOverrideReplacesIndividualKnobs) {
  net::FaultPlan plan;
  plan.loss_probability = 0.3;
  plan.max_retries = 1;
  const Scenario s = ScenarioBuilder().loss(0.05).faults(plan).build();
  EXPECT_DOUBLE_EQ(s.faults.loss_probability, 0.3);
  EXPECT_EQ(s.faults.max_retries, 1);
}

TEST(ScenarioBuilderTest, OutagesAreGeneratedAgainstTheBuiltHorizon) {
  const Scenario s =
      ScenarioBuilder().horizon(36000.0).outages(0.2, 120.0).build();
  ASSERT_FALSE(s.faults.outages.empty());
  Duration covered = 0.0;
  for (const auto& e : s.faults.outages) {
    ASSERT_LT(e.start, e.end);
    ASSERT_LE(e.start, 36000.0);
    covered += e.end - e.start;
  }
  EXPECT_NEAR(covered / 36000.0, 0.2, 0.08);
}

TEST(ScenarioBuilderTest, ExplicitOutageEpisodesWinOverGeneration) {
  const Scenario s = ScenarioBuilder()
                         .outage_episodes({{100.0, 200.0}})
                         .build();
  ASSERT_EQ(s.faults.outages.size(), 1u);
  EXPECT_DOUBLE_EQ(s.faults.outages.front().start, 100.0);
}

TEST(ScenarioBuilderTest, BuildValidatesAndThrowsOnBadKnobs) {
  ScenarioBuilder bad;
  bad.loss(1.5);
  EXPECT_THROW(bad.build(), std::invalid_argument);
}

TEST(ScenarioBuilderTest, BuilderIsReusableAndBuildDoesNotMutate) {
  ScenarioBuilder builder;
  builder.lambda(0.08).horizon(1800.0);
  const Scenario a = builder.build();
  const Scenario b = builder.build();
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.packets[i].arrival, b.packets[i].arrival);
  }
}

TEST(ScenarioBuilderTest, EscapeHatchesReplaceGeneratedPieces) {
  std::vector<apps::TrainEvent> timetable = {{300.0, 0, 128}, {600.0, 0, 128}};
  const Scenario s = ScenarioBuilder()
                         .horizon(1800.0)
                         .timetable(timetable)
                         .build();
  ASSERT_EQ(s.trains.size(), 2u);
  EXPECT_DOUBLE_EQ(s.trains[0].time, 300.0);
  EXPECT_DOUBLE_EQ(s.trains[1].time, 600.0);
}

}  // namespace
}  // namespace etrain::experiments
