// Tests for the post-paper extensions: channel-aware eTrain, inexact alarm
// batching, and jittered heartbeat schedules.
#include <gtest/gtest.h>

#include "android/alarm_manager.h"
#include "android/heartbeat_monitor.h"
#include "apps/train_schedule.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"

namespace etrain {
namespace {

// --- channel-aware eTrain ---

core::QueuedPacket queued(core::PacketId id, TimePoint arrival,
                          Duration deadline) {
  core::Packet p;
  p.id = id;
  p.app = 0;
  p.arrival = arrival;
  p.deadline = deadline;
  p.bytes = 1000;
  return core::QueuedPacket{p, &core::weibo_cost_profile()};
}

core::SlotContext ctx_at(TimePoint t, double estimate, double long_term) {
  core::SlotContext ctx;
  ctx.slot_start = t;
  ctx.slot_length = 1.0;
  ctx.bandwidth_estimate = estimate;
  ctx.bandwidth_long_term = long_term;
  return ctx;
}

TEST(ChannelAwareEtrain, DripWaitsForGoodChannel) {
  core::EtrainScheduler s({.theta = 0.1,
                           .k = 20,
                           .drip_defer_window = 0.0,
                           .channel_aware = true,
                           .channel_threshold = 1.0,
                           .panic_factor = 100.0});
  core::WaitingQueues q(1);
  q.enqueue(queued(1, 0.0, 60.0));
  // Cost gate open at t=30 (cost 0.5 >= 0.1), but channel below average.
  EXPECT_TRUE(s.select(ctx_at(30.0, 80e3, 120e3), q).empty());
  // Good channel: fires.
  EXPECT_EQ(s.select(ctx_at(30.0, 150e3, 120e3), q).size(), 1u);
}

TEST(ChannelAwareEtrain, PanicOverridesChannel) {
  core::EtrainScheduler s({.theta = 0.1,
                           .k = 20,
                           .drip_defer_window = 0.0,
                           .channel_aware = true,
                           .panic_factor = 3.0});
  core::WaitingQueues q(1);
  q.enqueue(queued(1, 0.0, 60.0));
  // Saturated cost (2.0) >= panic 3 * 0.1: drains even on a bad channel.
  EXPECT_EQ(s.select(ctx_at(120.0, 10e3, 120e3), q).size(), 1u);
}

TEST(ChannelAwareEtrain, HeartbeatFlushIgnoresChannel) {
  core::EtrainScheduler s({.theta = 1e9,
                           .k = 20,
                           .channel_aware = true});
  core::WaitingQueues q(1);
  q.enqueue(queued(1, 0.0, 60.0));
  auto ctx = ctx_at(10.0, 1e3, 120e3);  // terrible channel
  ctx.heartbeat_now = true;
  EXPECT_EQ(s.select(ctx, q).size(), 1u);  // the tail is already paid
}

TEST(ChannelAwareEtrain, DisabledByDefault) {
  const core::EtrainConfig config;
  EXPECT_FALSE(config.channel_aware);
}

TEST(ChannelAwareEtrain, EndToEndNoWorseThanOblivious) {
  experiments::ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 3600.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  const auto s = experiments::make_scenario(cfg);
  core::EtrainScheduler oblivious({.theta = 1.0, .k = 20});
  core::EtrainScheduler aware(
      {.theta = 1.0, .k = 20, .channel_aware = true});
  const auto mo = experiments::run_slotted(s, oblivious);
  const auto ma = experiments::run_slotted(s, aware);
  // Channel awareness only retimes forced drips; energy stays in the same
  // ballpark and the schedule stays valid.
  EXPECT_EQ(ma.outcomes.size(), mo.outcomes.size());
  EXPECT_LT(ma.network_energy(), mo.network_energy() * 1.15);
}

// --- inexact alarm batching ---

TEST(InexactAlarms, FiresSnapToBatchBoundaries) {
  sim::Simulator simulator;
  android::AlarmManager alarms(simulator);
  std::vector<TimePoint> fires;
  alarms.set_inexact_repeating(70.0, 250.0,
                               [&] { fires.push_back(simulator.now()); },
                               /*batch_window=*/60.0);
  simulator.run_until(900.0);
  // Nominal: 70, 320, 570, 820 -> batched: 120, 360, 600, 840.
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_DOUBLE_EQ(fires[0], 120.0);
  EXPECT_DOUBLE_EQ(fires[1], 360.0);
  EXPECT_DOUBLE_EQ(fires[2], 600.0);
  EXPECT_DOUBLE_EQ(fires[3], 840.0);
}

TEST(InexactAlarms, ExactMultipleIsNotDeferred) {
  sim::Simulator simulator;
  android::AlarmManager alarms(simulator);
  std::vector<TimePoint> fires;
  alarms.set_inexact_repeating(120.0, 240.0,
                               [&] { fires.push_back(simulator.now()); },
                               60.0);
  simulator.run_until(400.0);
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_DOUBLE_EQ(fires[0], 120.0);
  EXPECT_DOUBLE_EQ(fires[1], 360.0);
}

TEST(InexactAlarms, IndependentAppsAlign) {
  // The Android effect eTrain gets for free: two daemons with co-prime-ish
  // cycles end up firing in the same instant once batched.
  sim::Simulator simulator;
  android::AlarmManager alarms(simulator);
  std::vector<std::pair<TimePoint, int>> fires;
  alarms.set_inexact_repeating(10.0, 270.0,
                               [&] { fires.push_back({simulator.now(), 0}); },
                               60.0);
  alarms.set_inexact_repeating(25.0, 300.0,
                               [&] { fires.push_back({simulator.now(), 1}); },
                               60.0);
  simulator.run_until(4000.0);
  std::size_t coincident = 0;
  for (std::size_t i = 1; i < fires.size(); ++i) {
    if (fires[i].first == fires[i - 1].first &&
        fires[i].second != fires[i - 1].second) {
      ++coincident;
    }
  }
  EXPECT_GE(coincident, 3u);
}

TEST(InexactAlarms, CancelWorks) {
  sim::Simulator simulator;
  android::AlarmManager alarms(simulator);
  int fired = 0;
  const auto id =
      alarms.set_inexact_repeating(10.0, 100.0, [&] { ++fired; }, 60.0);
  simulator.run_until(70.0);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(alarms.cancel(id));
  simulator.run_until(1000.0);
  EXPECT_EQ(fired, 1);
}

TEST(InexactAlarms, InvalidParametersThrow) {
  sim::Simulator simulator;
  android::AlarmManager alarms(simulator);
  EXPECT_THROW(alarms.set_inexact_repeating(0.0, 0.0, [] {}, 60.0),
               std::invalid_argument);
  EXPECT_THROW(alarms.set_inexact_repeating(0.0, 100.0, [] {}, 0.0),
               std::invalid_argument);
}

// --- jittered schedules & monitor robustness ---

TEST(JitteredSchedule, RespectsJitterBound) {
  Rng rng(3);
  const auto clean =
      apps::build_train_schedule(apps::default_train_specs(), 3600.0);
  Rng rng2(3);
  const auto jittered = apps::build_train_schedule_jittered(
      apps::default_train_specs(), 3600.0, rng2, 2.0);
  ASSERT_EQ(clean.size(), jittered.size());
  // Sorted and non-negative.
  for (std::size_t i = 1; i < jittered.size(); ++i) {
    EXPECT_LE(jittered[i - 1].time, jittered[i].time);
    EXPECT_GE(jittered[i].time, 0.0);
  }
}

TEST(JitteredSchedule, NegativeJitterRejected) {
  Rng rng(4);
  EXPECT_THROW(apps::build_train_schedule_jittered(
                   apps::default_train_specs(), 100.0, rng, -1.0),
               std::invalid_argument);
}

TEST(JitteredSchedule, MonitorPredictionsSurviveJitter) {
  // +-2 s of jitter on a 300 s cycle: predictions stay within a few
  // seconds, well inside the DCH tail window piggybacking needs.
  Rng rng(5);
  android::HeartbeatMonitor monitor;
  TimePoint t = 0.0;
  for (int j = 0; j < 12; ++j) {
    monitor.on_heartbeat(0, t + rng.uniform(-2.0, 2.0));
    t += 300.0;
  }
  ASSERT_TRUE(monitor.predict_next(0).has_value());
  EXPECT_NEAR(*monitor.estimated_cycle(0), 300.0, 3.0);
}

TEST(JitteredSchedule, EtrainStillSavesUnderJitter) {
  experiments::ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 3600.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  auto s = experiments::make_scenario(cfg);
  Rng rng(6);
  s.trains = apps::build_train_schedule_jittered(
      apps::default_train_specs(), cfg.horizon, rng, 2.0);

  core::EtrainScheduler etrain({.theta = 1.0, .k = 20});
  const auto me = experiments::run_slotted(s, etrain);
  // Compare against the un-jittered result: within a modest margin.
  auto clean = experiments::make_scenario(cfg);
  core::EtrainScheduler etrain2({.theta = 1.0, .k = 20});
  const auto mc = experiments::run_slotted(clean, etrain2);
  EXPECT_LT(me.network_energy(), mc.network_energy() * 1.1);
}

}  // namespace
}  // namespace etrain
