// The scoped-span wall-clock profiler (obs/profile.h): hierarchical
// aggregation, cross-thread merging, and the reset/re-enter lifecycle the
// bench binaries exercise (profile once per process, snapshot at report
// time).
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <functional>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace etrain::obs {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override { profiler_reset(); }
  void TearDown() override { profiler_reset(); }
};

const ProfileNode* find_child(const ProfileNode& node,
                              const std::string& name) {
  for (const auto& c : node.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST_F(ProfileTest, EmptySnapshotIsNullopt) {
  EXPECT_FALSE(profiler_snapshot().has_value());
}

TEST_F(ProfileTest, NestedScopesAggregateHierarchically) {
  for (int i = 0; i < 3; ++i) {
    OBS_PROFILE_SCOPE("outer");
    {
      OBS_PROFILE_SCOPE("inner");
    }
    {
      OBS_PROFILE_SCOPE("inner");
    }
  }
  const auto snap = profiler_snapshot();
  ASSERT_TRUE(snap.has_value());
  const ProfileNode* outer = find_child(*snap, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 3u);
  EXPECT_GE(outer->seconds, 0.0);
  const ProfileNode* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  // Two sibling scopes with the same name merge into one node.
  EXPECT_EQ(inner->calls, 6u);
  EXPECT_EQ(outer->children.size(), 1u);
}

TEST_F(ProfileTest, SequentialTopLevelScopesKeepWorking) {
  // Regression: after the first top-level scope on a thread closed, the
  // next enter() must land back at the thread's root, not at a dangling
  // parent.
  {
    OBS_PROFILE_SCOPE("first");
  }
  {
    OBS_PROFILE_SCOPE("second");
  }
  {
    OBS_PROFILE_SCOPE("second");
  }
  const auto snap = profiler_snapshot();
  ASSERT_TRUE(snap.has_value());
  const ProfileNode* first = find_child(*snap, "first");
  const ProfileNode* second = find_child(*snap, "second");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->calls, 1u);
  EXPECT_EQ(second->calls, 2u);
}

TEST_F(ProfileTest, WorkerThreadScopesMergeIntoSnapshot) {
  const std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto out = parallel_map(
      items,
      [](int v) {
        OBS_PROFILE_SCOPE("worker.task");
        return v * 2;
      },
      4);
  ASSERT_EQ(out.size(), items.size());
  const auto snap = profiler_snapshot();
  ASSERT_TRUE(snap.has_value());
  // parallel_map itself carries an OBS_PROFILE_SCOPE("parallel_map.task")
  // around each task body, so the worker scopes nest under it; find the
  // per-task node wherever it landed and confirm all 8 calls survived the
  // threads' exit.
  std::uint64_t total_calls = 0;
  const std::function<void(const ProfileNode&)> walk =
      [&](const ProfileNode& node) {
        if (node.name == "worker.task") total_calls += node.calls;
        for (const auto& c : node.children) walk(c);
      };
  walk(*snap);
  EXPECT_EQ(total_calls, items.size());
}

TEST_F(ProfileTest, SnapshotSecondsAreMonotoneAndNested) {
  {
    OBS_PROFILE_SCOPE("parent");
    OBS_PROFILE_SCOPE("child");
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
    (void)sink;
  }
  const auto snap = profiler_snapshot();
  ASSERT_TRUE(snap.has_value());
  const ProfileNode* parent = find_child(*snap, "parent");
  ASSERT_NE(parent, nullptr);
  const ProfileNode* child = find_child(*parent, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_GT(parent->seconds, 0.0);
  // A child's exclusive wall time cannot exceed its enclosing span.
  EXPECT_LE(child->seconds, parent->seconds + 1e-6);
}

TEST_F(ProfileTest, ResetClearsAcrossThreads) {
  {
    OBS_PROFILE_SCOPE("before_reset");
  }
  std::thread([] { OBS_PROFILE_SCOPE("thread_scope"); }).join();
  ASSERT_TRUE(profiler_snapshot().has_value());
  profiler_reset();
  EXPECT_FALSE(profiler_snapshot().has_value());
  {
    OBS_PROFILE_SCOPE("after_reset");
  }
  const auto snap = profiler_snapshot();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(find_child(*snap, "before_reset"), nullptr);
  EXPECT_NE(find_child(*snap, "after_reset"), nullptr);
}

}  // namespace
}  // namespace etrain::obs
