// Stress and soak tests: an adversarial random policy hammering the
// harness invariants, and long-horizon / high-rate runs.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"

namespace etrain::experiments {
namespace {

/// An adversarial policy: each slot it flips coins about which packets to
/// release (sometimes none, sometimes everything, in scrambled order, some
/// flagged for Wi-Fi even when none exists). The harness must keep every
/// invariant regardless.
class RandomPolicy final : public core::SchedulingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  std::vector<core::Selection> select(
      const core::SlotContext& /*ctx*/,
      const core::WaitingQueues& queues) override {
    std::vector<core::Selection> out;
    for (int app = 0; app < queues.app_count(); ++app) {
      for (const auto& p : queues.queue(app)) {
        const double roll = rng_.uniform(0.0, 1.0);
        if (roll < 0.15) {
          // Some selections target interfaces the scenario doesn't have
          // (wifi, slot 2): the harness must fall back to cellular.
          const int interface = roll < 0.03   ? core::kInterfaceWifi
                                : roll < 0.05 ? core::kInterfaceExtraBase
                                              : core::kInterfaceCellular;
          out.push_back(core::Selection{app, p.packet.id, interface});
        }
      }
    }
    // Scramble the order.
    for (std::size_t i = out.size(); i > 1; --i) {
      std::swap(out[i - 1],
                out[static_cast<std::size_t>(rng_.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);
    }
    return out;
  }
  std::string name() const override { return "Random"; }

 private:
  Rng rng_;
};

TEST(StressRandomPolicy, InvariantsSurviveChaos) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ScenarioConfig cfg;
    cfg.lambda = 0.12;
    cfg.horizon = 1800.0;
    cfg.workload_seed = seed;
    cfg.model = radio::PowerModel::PaperSimulation();
    const Scenario s = make_scenario(cfg);
    RandomPolicy policy(seed * 77);
    const auto m = run_slotted(s, policy);

    // Exactly-once delivery.
    EXPECT_EQ(m.outcomes.size(), s.packets.size());
    std::set<core::PacketId> ids;
    for (const auto& o : m.outcomes) {
      ids.insert(o.id);
      EXPECT_GE(o.sent, o.arrival - 1e-9);
    }
    EXPECT_EQ(ids.size(), s.packets.size());
    // Serialized radio.
    for (std::size_t i = 1; i < m.log.size(); ++i) {
      EXPECT_GE(m.log[i].start, m.log[i - 1].end() - 1e-9);
    }
    // No Wi-Fi in the scenario: wifi selections must have been ignored.
    EXPECT_EQ(m.wifi_log.size(), 0u);
  }
}

TEST(Soak, TwentyFourHourHighRateRun) {
  ScenarioConfig cfg;
  cfg.lambda = 0.2;  // well above the paper's heaviest workload
  cfg.horizon = 24.0 * 3600.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  const Scenario s = make_scenario(cfg);
  EXPECT_GT(s.packets.size(), 15000u);

  core::EtrainScheduler policy({.theta = 2.0, .k = 200});
  const auto m = run_slotted(s, policy);
  EXPECT_EQ(m.outcomes.size(), s.packets.size());
  EXPECT_GT(m.network_energy(), 0.0);
  EXPECT_LT(m.violation_ratio, 0.5);
  // Energy per hour must stay bounded (no runaway accounting).
  EXPECT_LT(m.network_energy() / 24.0, 2000.0);
}

TEST(Soak, ManyAppsScenario) {
  // 12 cargo apps instead of 3: queue handling scales.
  Scenario s;
  s.horizon = 3600.0;
  s.model = radio::PowerModel::PaperSimulation();
  s.trace = net::BandwidthTrace::constant(120e3, 60);
  s.trains = apps::build_train_schedule(apps::default_train_specs(),
                                        s.horizon);
  Rng rng(5);
  std::vector<apps::CargoAppSpec> specs;
  for (int i = 0; i < 12; ++i) {
    auto spec = apps::weibo_spec();
    spec.mean_interarrival = 40.0 + 10.0 * i;
    specs.push_back(spec);
  }
  s.packets = apps::generate_workload(specs, s.horizon, rng);
  for (const auto& spec : specs) s.profiles.push_back(spec.profile);

  core::EtrainScheduler policy({.theta = 1.0, .k = 50});
  const auto m = run_slotted(s, policy);
  EXPECT_EQ(m.outcomes.size(), s.packets.size());
  bool seen_high_app = false;
  for (const auto& o : m.outcomes) {
    if (o.app == 11) seen_high_app = true;
  }
  EXPECT_TRUE(seen_high_app);
}

}  // namespace
}  // namespace etrain::experiments
