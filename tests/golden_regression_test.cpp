// Golden regression pins: exact metric values for the standard 1-hour
// scenario at the default seed. Every model in the pipeline — workload
// generation, bandwidth synthesis, the schedulers, the energy meter — feeds
// these numbers, so any unintended behavioural change trips a pin.
//
// If you change behaviour ON PURPOSE (new model parameter, scheduler fix),
// re-derive the constants by running the corresponding scenario and update
// them together with an EXPERIMENTS.md note; never loosen the tolerance.
#include <gtest/gtest.h>

#include "baselines/baseline_policy.h"
#include "baselines/etime_policy.h"
#include "baselines/oracle_policy.h"
#include "baselines/peres_policy.h"
#include "baselines/tailender_policy.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"

namespace etrain::experiments {
namespace {

class GoldenRegression : public ::testing::Test {
 protected:
  static const Scenario& scenario() {
    static const Scenario s = [] {
      ScenarioConfig cfg;
      cfg.lambda = 0.08;
      cfg.horizon = 3600.0;
      cfg.model = radio::PowerModel::PaperSimulation();
      return make_scenario(cfg);
    }();
    return s;
  }

  static void expect_golden(core::SchedulingPolicy& policy, double energy,
                            double delay, double violation) {
    const auto m = run_slotted(scenario(), policy);
    EXPECT_NEAR(m.network_energy(), energy, 1e-4);
    EXPECT_NEAR(m.normalized_delay, delay, 1e-4);
    EXPECT_NEAR(m.violation_ratio, violation, 1e-6);
  }
};

TEST_F(GoldenRegression, WorkloadShape) {
  EXPECT_EQ(scenario().packets.size(), 274u);
  EXPECT_EQ(scenario().trains.size(), 41u);
}

TEST_F(GoldenRegression, Baseline) {
  baselines::BaselinePolicy p;
  expect_golden(p, 1151.858098, 0.486261, 0.0);
}

TEST_F(GoldenRegression, Etrain) {
  core::EtrainScheduler p({.theta = 1.0, .k = 20});
  expect_golden(p, 373.689316, 52.648528, 0.007299);
}

TEST_F(GoldenRegression, PerES) {
  baselines::PerESPolicy p({.omega = 0.5});
  expect_golden(p, 562.705028, 82.459890, 0.051095);
}

TEST_F(GoldenRegression, ETime) {
  baselines::ETimePolicy p({.v = 1.0});
  expect_golden(p, 435.561709, 45.108070, 0.0);
}

TEST_F(GoldenRegression, Oracle) {
  baselines::OraclePolicy p;
  expect_golden(p, 328.442462, 57.975911, 0.0);
}

TEST_F(GoldenRegression, TailEnder) {
  baselines::TailEnderPolicy p;
  expect_golden(p, 385.054781, 67.593250, 0.0);
}

TEST_F(GoldenRegression, WuhanTraceFingerprint) {
  const auto t = net::wuhan_trace();
  EXPECT_EQ(t.samples().size(), 7200u);
  // Pin a few samples and the mean so trace-generator changes are caught.
  EXPECT_NEAR(t.mean(), 150421.08, 1.0);
  EXPECT_NEAR(t.samples()[0], 60812.82, 1.0);
  EXPECT_NEAR(t.samples()[3600], 166416.17, 1.0);
}

}  // namespace
}  // namespace etrain::experiments
