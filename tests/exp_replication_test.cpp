#include "exp/replication.h"

#include <gtest/gtest.h>

#include "baselines/baseline_policy.h"
#include "common/parallel.h"
#include "core/etrain_scheduler.h"

namespace etrain::experiments {
namespace {

TEST(ReplicateMetric, BasicStatistics) {
  const auto r = replicate_metric({10.0, 12.0, 14.0, 8.0, 16.0});
  EXPECT_DOUBLE_EQ(r.mean, 12.0);
  EXPECT_EQ(r.runs, 5u);
  EXPECT_DOUBLE_EQ(r.min, 8.0);
  EXPECT_DOUBLE_EQ(r.max, 16.0);
  EXPECT_GT(r.ci95_half_width, 0.0);
  EXPECT_LT(r.ci95_half_width, r.stddev * 2.0);
}

TEST(ReplicateMetric, SingleSampleHasNoInterval) {
  const auto r = replicate_metric({5.0});
  EXPECT_DOUBLE_EQ(r.mean, 5.0);
  EXPECT_DOUBLE_EQ(r.ci95_half_width, 0.0);
}

TEST(ReplicateMetric, EmptyThrows) {
  EXPECT_THROW(replicate_metric({}), std::invalid_argument);
}

TEST(Replicate, DefaultSeeds) {
  const auto seeds = default_seeds(4);
  ASSERT_EQ(seeds.size(), 4u);
  EXPECT_EQ(seeds[0], 1u);
  EXPECT_EQ(seeds[3], 4u);
}

TEST(Replicate, RunsAcrossSeedsAndAggregates) {
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 1200.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  const auto metrics = replicate(cfg, default_seeds(4), [] {
    return std::make_unique<baselines::BaselinePolicy>();
  });
  EXPECT_EQ(metrics.energy.runs, 4u);
  EXPECT_GT(metrics.energy.mean, 0.0);
  EXPECT_GT(metrics.energy.stddev, 0.0);  // seeds genuinely differ
  EXPECT_LT(metrics.delay.mean, 2.0);     // baseline is immediate
}

TEST(Replicate, OrderingHoldsInExpectation) {
  // The headline ordering must survive averaging over seeds.
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 2400.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  const auto seeds = default_seeds(5);
  const auto baseline = replicate(cfg, seeds, [] {
    return std::make_unique<baselines::BaselinePolicy>();
  });
  const auto etrain = replicate(cfg, seeds, [] {
    return std::make_unique<core::EtrainScheduler>(
        core::EtrainConfig{.theta = 1.0, .k = 20});
  });
  EXPECT_LT(etrain.energy.mean + etrain.energy.ci95_half_width,
            baseline.energy.mean - baseline.energy.ci95_half_width);
}

TEST(Replicate, SerialAndParallelAreByteIdentical) {
  // The parallel experiment engine's core guarantee: ETRAIN_JOBS must not
  // change a single bit of any aggregate.
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = 1200.0;
  cfg.model = radio::PowerModel::PaperSimulation();
  const auto seeds = default_seeds(6);
  const auto make_policy = [] {
    return std::make_unique<core::EtrainScheduler>(
        core::EtrainConfig{.theta = 1.0, .k = 20});
  };
  set_default_jobs(1);
  const auto serial = replicate(cfg, seeds, make_policy);
  set_default_jobs(4);
  const auto parallel = replicate(cfg, seeds, make_policy);
  set_default_jobs(0);

  const auto expect_identical = [](const Replicated& a, const Replicated& b) {
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
    EXPECT_EQ(a.ci95_half_width, b.ci95_half_width);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.runs, b.runs);
  };
  expect_identical(serial.energy, parallel.energy);
  expect_identical(serial.delay, parallel.delay);
  expect_identical(serial.violation, parallel.violation);
}

TEST(Replicate, NoSeedsThrows) {
  ScenarioConfig cfg;
  EXPECT_THROW(replicate(cfg, {}, [] {
    return std::make_unique<baselines::BaselinePolicy>();
  }), std::invalid_argument);
}

}  // namespace
}  // namespace etrain::experiments
