#include "apps/cargo_app.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace etrain::apps {
namespace {

TEST(CargoSpecs, PaperWorkloadParameters) {
  // Sec. VI-A: inter-arrival proportions 5:2:10 (50 s / 20 s / 100 s at
  // lambda = 0.08); sizes 5 KB/1 KB, 2 KB/100 B, 100 KB/10 KB.
  const auto mail = mail_spec();
  EXPECT_DOUBLE_EQ(mail.mean_interarrival, 50.0);
  EXPECT_DOUBLE_EQ(mail.size_mean, 5000.0);
  EXPECT_DOUBLE_EQ(mail.size_min, 1000.0);

  const auto weibo = weibo_spec();
  EXPECT_DOUBLE_EQ(weibo.mean_interarrival, 20.0);
  EXPECT_DOUBLE_EQ(weibo.size_mean, 2000.0);
  EXPECT_DOUBLE_EQ(weibo.size_min, 100.0);

  const auto cloud = cloud_spec();
  EXPECT_DOUBLE_EQ(cloud.mean_interarrival, 100.0);
  EXPECT_DOUBLE_EQ(cloud.size_mean, 100000.0);
  EXPECT_DOUBLE_EQ(cloud.size_min, 10000.0);
}

TEST(CargoSpecs, DefaultRateSumsToLambda008) {
  const auto specs = default_cargo_specs();
  double lambda = 0.0;
  for (const auto& s : specs) lambda += 1.0 / s.mean_interarrival;
  EXPECT_NEAR(lambda, 0.08, 1e-12);
}

TEST(CargoSpecs, LambdaScalingPreservesProportions) {
  // Fig. 8(b): lambda = 0.04 -> inter-arrival means 100 s, 40 s, 200 s.
  const auto specs = cargo_specs_for_lambda(0.04);
  EXPECT_NEAR(specs[0].mean_interarrival, 100.0, 1e-9);
  EXPECT_NEAR(specs[1].mean_interarrival, 40.0, 1e-9);
  EXPECT_NEAR(specs[2].mean_interarrival, 200.0, 1e-9);

  const auto specs12 = cargo_specs_for_lambda(0.12);
  double lambda = 0.0;
  for (const auto& s : specs12) lambda += 1.0 / s.mean_interarrival;
  EXPECT_NEAR(lambda, 0.12, 1e-12);
}

TEST(CargoSpecs, InvalidLambdaThrows) {
  EXPECT_THROW(cargo_specs_for_lambda(0.0), std::invalid_argument);
  EXPECT_THROW(cargo_specs_for_lambda(-1.0), std::invalid_argument);
}

TEST(GenerateArrivals, PoissonRateMatches) {
  Rng rng(1);
  const auto packets = generate_arrivals(weibo_spec(), 1, 200000.0, rng);
  // 10000 expected arrivals at 1/20 s.
  EXPECT_NEAR(static_cast<double>(packets.size()), 10000.0, 300.0);

  RunningStats gaps;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    gaps.add(packets[i].arrival - packets[i - 1].arrival);
  }
  EXPECT_NEAR(gaps.mean(), 20.0, 0.7);
  // Exponential inter-arrivals: stddev ~ mean.
  EXPECT_NEAR(gaps.stddev(), 20.0, 1.5);
}

TEST(GenerateArrivals, SizesRespectTruncation) {
  Rng rng(2);
  const auto packets = generate_arrivals(mail_spec(), 0, 100000.0, rng);
  RunningStats sizes;
  for (const auto& p : packets) {
    EXPECT_GE(p.bytes, 1000);
    sizes.add(static_cast<double>(p.bytes));
  }
  EXPECT_NEAR(sizes.mean(), 5000.0, 500.0);
}

TEST(GenerateArrivals, TagsAppAndDeadline) {
  Rng rng(3);
  const auto packets = generate_arrivals(cloud_spec(), 2, 10000.0, rng, 500);
  ASSERT_FALSE(packets.empty());
  for (const auto& p : packets) {
    EXPECT_EQ(p.app, 2);
    EXPECT_DOUBLE_EQ(p.deadline, cloud_spec().deadline);
  }
  EXPECT_EQ(packets.front().id, 500);
  EXPECT_EQ(packets.back().id,
            500 + static_cast<core::PacketId>(packets.size()) - 1);
}

TEST(GenerateArrivals, EmptyHorizonYieldsNothing) {
  Rng rng(4);
  EXPECT_TRUE(generate_arrivals(mail_spec(), 0, 0.0, rng).empty());
}

TEST(GenerateWorkload, MergedSortedUniqueIds) {
  Rng rng(5);
  const auto packets = generate_workload(default_cargo_specs(), 7200.0, rng);
  ASSERT_GT(packets.size(), 300u);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_LE(packets[i - 1].arrival, packets[i].arrival);
    EXPECT_EQ(packets[i].id, static_cast<core::PacketId>(i));
  }
  // All three apps present.
  bool seen[3] = {false, false, false};
  for (const auto& p : packets) seen[p.app] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(GenerateWorkload, DeterministicForSeed) {
  Rng a(7), b(7);
  const auto pa = generate_workload(default_cargo_specs(), 7200.0, a);
  const auto pb = generate_workload(default_cargo_specs(), 7200.0, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i].arrival, pb[i].arrival);
    EXPECT_EQ(pa[i].bytes, pb[i].bytes);
  }
}

TEST(GenerateWorkload, AppRatiosFollowRates) {
  Rng rng(8);
  const auto packets = generate_workload(default_cargo_specs(), 72000.0, rng);
  std::size_t counts[3] = {0, 0, 0};
  for (const auto& p : packets) ++counts[p.app];
  // Rates 1/50 : 1/20 : 1/100 = 0.25 : 0.625 : 0.125 of the total.
  const auto total = static_cast<double>(packets.size());
  EXPECT_NEAR(counts[0] / total, 0.25, 0.03);
  EXPECT_NEAR(counts[1] / total, 0.625, 0.03);
  EXPECT_NEAR(counts[2] / total, 0.125, 0.03);
}

}  // namespace
}  // namespace etrain::apps
