// Wire-protocol tests (system/protocol.h `wire` namespace): the frame
// codecs must round-trip every message type, reject truncated or
// trailing-garbage payloads without ever reading out of bounds, and the
// incremental FrameReader must reassemble frames from arbitrary chunk
// boundaries and poison itself permanently on a malformed header.
#include "system/protocol.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace {

using namespace etrain::system::wire;

TEST(WirePrimitives, FixedWidthRoundTrip) {
  std::string buf;
  put_u8(buf, 0xAB);
  put_u16(buf, 0xBEEF);
  put_u32(buf, 0xDEADBEEFu);
  put_u64(buf, 0x0123456789ABCDEFull);
  put_f64(buf, -1234.5678);
  EXPECT_EQ(buf.size(), 1u + 2u + 4u + 8u + 8u);

  std::size_t pos = 0;
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  double e = 0.0;
  EXPECT_TRUE(get_u8(buf, pos, a));
  EXPECT_TRUE(get_u16(buf, pos, b));
  EXPECT_TRUE(get_u32(buf, pos, c));
  EXPECT_TRUE(get_u64(buf, pos, d));
  EXPECT_TRUE(get_f64(buf, pos, e));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_EQ(e, -1234.5678);
  EXPECT_EQ(pos, buf.size());
}

TEST(WirePrimitives, LittleEndianOnTheWire) {
  std::string buf;
  put_u32(buf, 0x04030201u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x04);
}

TEST(WirePrimitives, GettersRefuseTruncation) {
  const std::string three = "abc";
  std::size_t pos = 0;
  std::uint32_t v32 = 0;
  EXPECT_FALSE(get_u32(three, pos, v32));
  EXPECT_EQ(pos, 0u);  // the cursor never moves on failure
  std::uint64_t v64 = 0;
  EXPECT_FALSE(get_u64(three, pos, v64));
  double f = 0.0;
  EXPECT_FALSE(get_f64(three, pos, f));
  // NaN bit patterns still travel losslessly.
  std::string nan_buf;
  put_f64(nan_buf, std::numeric_limits<double>::quiet_NaN());
  pos = 0;
  EXPECT_TRUE(get_f64(nan_buf, pos, f));
  EXPECT_TRUE(f != f);
}

TEST(WireFrames, HelloRoundTrip) {
  HelloFrame hello;
  hello.client_id = 77;
  hello.cargo_apps.push_back({3, ProfileCode::kWeibo});
  hello.cargo_apps.push_back({9, ProfileCode::kCloud});
  hello.train_apps.push_back(1);
  const std::string bytes = encode_hello(hello);

  FrameReader reader;
  reader.feed(bytes);
  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, FrameType::kHello);
  HelloFrame decoded;
  ASSERT_TRUE(decode_hello(frame.payload, decoded));
  EXPECT_EQ(decoded, hello);
}

TEST(WireFrames, HeartbeatCargoAckRoundTrip) {
  const HeartbeatFrame hb{42, 7};
  const CargoFrame cargo{5, 123456789ull, 20480, 35.5};
  const AckFrame ack{123456789ull, 12.25, 1};

  FrameReader reader;
  reader.feed(encode_heartbeat(hb));
  reader.feed(encode_cargo(cargo));
  reader.feed(encode_ack(ack));

  Frame frame;
  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  HeartbeatFrame hb2;
  ASSERT_TRUE(decode_heartbeat(frame.payload, hb2));
  EXPECT_EQ(hb2, hb);

  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  CargoFrame cargo2;
  ASSERT_TRUE(decode_cargo(frame.payload, cargo2));
  EXPECT_EQ(cargo2, cargo);

  ASSERT_EQ(reader.next(frame), FrameReader::Status::kFrame);
  AckFrame ack2;
  ASSERT_TRUE(decode_ack(frame.payload, ack2));
  EXPECT_EQ(ack2, ack);

  EXPECT_EQ(reader.next(frame), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireFrames, DecodersRejectTruncatedAndTrailingBytes) {
  const CargoFrame cargo{5, 1, 2048, 10.0};
  const std::string bytes = encode_cargo(cargo);
  const std::string payload = bytes.substr(kFrameHeaderBytes);

  CargoFrame out;
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(decode_cargo(payload.substr(0, cut), out))
        << "accepted a " << cut << "-byte truncation";
  }
  EXPECT_TRUE(decode_cargo(payload, out));
  EXPECT_FALSE(decode_cargo(payload + "x", out)) << "accepted trailing bytes";
}

TEST(WireFrames, HelloRejectsBadProfileAndOversizedAppLists) {
  HelloFrame hello;
  hello.client_id = 1;
  hello.cargo_apps.push_back({3, ProfileCode::kMail});
  std::string payload = encode_hello(hello).substr(kFrameHeaderBytes);
  // Corrupt the profile code (last byte of the single cargo spec).
  payload[8 + 2 + 4] = 99;
  HelloFrame out;
  EXPECT_FALSE(decode_hello(payload, out));

  // An app count beyond kMaxAppsPerClient is rejected before any
  // allocation in its honor.
  std::string huge;
  put_u64(huge, 1);
  put_u16(huge, static_cast<std::uint16_t>(kMaxAppsPerClient + 1));
  EXPECT_FALSE(decode_hello(huge, out));
}

TEST(FrameReader, ReassemblesAcrossArbitraryChunks) {
  std::string stream;
  for (std::uint32_t i = 0; i < 10; ++i) {
    stream += encode_heartbeat(HeartbeatFrame{1, i});
  }
  // Feed one byte at a time — the cruellest chunking TCP can produce.
  FrameReader reader;
  std::uint32_t seen = 0;
  for (char byte : stream) {
    reader.feed(std::string_view(&byte, 1));
    Frame frame;
    while (reader.next(frame) == FrameReader::Status::kFrame) {
      HeartbeatFrame hb;
      ASSERT_TRUE(decode_heartbeat(frame.payload, hb));
      EXPECT_EQ(hb.seq, seen++);
    }
  }
  EXPECT_EQ(seen, 10u);
  EXPECT_FALSE(reader.errored());
}

TEST(FrameReader, GarbagePoisonsPermanently) {
  // An oversized declared length means the stream lost sync.
  std::string bad;
  put_u32(bad, kMaxPayloadBytes + 1);
  put_u8(bad, static_cast<std::uint8_t>(FrameType::kHello));
  FrameReader reader;
  reader.feed(bad);
  Frame frame;
  EXPECT_EQ(reader.next(frame), FrameReader::Status::kError);
  EXPECT_TRUE(reader.errored());
  // Feeding a perfectly good frame afterwards cannot resurrect it.
  reader.feed(encode_bye());
  EXPECT_EQ(reader.next(frame), FrameReader::Status::kError);
}

TEST(FrameReader, UnknownTypePoisons) {
  std::string bad;
  append_frame_header(bad, static_cast<FrameType>(0), 0);
  FrameReader reader;
  reader.feed(bad);
  Frame frame;
  EXPECT_EQ(reader.next(frame), FrameReader::Status::kError);

  std::string bad_high;
  append_frame_header(bad_high, static_cast<FrameType>(42), 0);
  FrameReader reader2;
  reader2.feed(bad_high);
  EXPECT_EQ(reader2.next(frame), FrameReader::Status::kError);
}

}  // namespace
