// Quantile estimation over fixed histogram buckets (obs/metrics.h): the
// p50/p95/p99 numbers every RunReport embeds. The estimator interpolates
// linearly inside the bucket containing the rank and tightens the edge
// buckets to the observed min/max, so the checks here pin both the exact
// cases (empty, single sample, q = 0/1) and the interpolated ones.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace etrain::obs {
namespace {

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramQuantile, SingleSampleIsExactAtEveryQuantile) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(1.7);
  // One sample: min == max == 1.7, and the containing bucket's edges are
  // clamped to the observed range, so every quantile collapses to 1.7.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.7);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.7);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.7);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.7);
}

TEST(HistogramQuantile, ExtremesAreObservedMinMax) {
  Histogram h({10.0, 20.0, 30.0});
  h.add(3.0);
  h.add(12.0);
  h.add(27.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 27.0);
}

TEST(HistogramQuantile, InterpolatesInsideOneBucket) {
  // 10 samples all inside the (0, 10] bucket, uniformly placed. The
  // estimator sees only "10 samples between min=1 and max=10", so p50 is
  // the linear 50 % point of that range.
  Histogram h({10.0, 20.0});
  for (int i = 1; i <= 10; ++i) h.add(static_cast<double>(i));
  const double p50 = h.quantile(0.5);
  EXPECT_NEAR(p50, 1.0 + (10.0 - 1.0) * 0.5, 1e-12);
}

TEST(HistogramQuantile, WalksCumulativeCountsAcrossBuckets) {
  // 90 samples in (0, 1], 10 samples in (1, 10]: p50 must land in the
  // first bucket, p95 in the second, p99 above p95.
  Histogram h({1.0, 10.0});
  for (int i = 0; i < 90; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(5.0);
  const double p50 = h.quantile(0.5);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, 1.0);
  EXPECT_GT(p95, 1.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, h.min());
}

TEST(HistogramQuantile, OverflowBucketClampsToObservedMax) {
  // All samples beyond the last bound land in the overflow bucket, which
  // has no upper bound of its own — the observed max bounds it.
  Histogram h({1.0});
  h.add(50.0);
  h.add(100.0);
  h.add(150.0);
  EXPECT_LE(h.quantile(0.99), 150.0);
  EXPECT_GE(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 150.0);
}

TEST(HistogramQuantile, SnapshotAgreesWithLiveHistogram) {
  Registry registry;
  auto& h = registry.histogram("delay", {1.0, 5.0, 25.0});
  for (const double v : {0.5, 0.7, 2.0, 3.0, 4.0, 17.0, 90.0}) h.add(v);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(hs.quantile(q), h.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(hs.mean(), h.mean());
}

TEST(HistogramQuantile, MonotoneInQ) {
  Histogram h({0.1, 1.0, 10.0, 100.0});
  double x = 0.03;
  for (int i = 0; i < 200; ++i) {
    h.add(x);
    x *= 1.05;
  }
  double prev = h.quantile(0.0);
  for (double q = 0.05; q <= 1.0 + 1e-9; q += 0.05) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev - 1e-12) << "q=" << q;
    prev = cur;
  }
}

}  // namespace
}  // namespace etrain::obs
