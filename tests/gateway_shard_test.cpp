// Sharded-gateway tests (gateway/shard.h, gateway/fold.h): the
// deterministic shutdown fold — one-shard folds preserve session close
// order and reproduce the historical close-time fold bit for bit,
// multi-shard folds are a pure function of the records — plus the live
// properties of a sharded Gateway over real loopback sockets: sessions
// pinned to exactly one shard (both SO_REUSEPORT and forced hand-off
// accept paths), shard-labeled /metrics families, and SIGTERM mid-load
// draining every shard into one report_check-clean manifest.
#include "gateway/gateway.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "gateway/fold.h"
#include "gateway/loadgen.h"
#include "obs/report_check.h"
#include "obs/stats_server.h"
#include "radio/energy_meter.h"

namespace {

using namespace etrain;

/// A non-overlapping synthetic uplink log whose shape depends on `flavor`,
/// so different sessions produce different energy bills.
radio::TransmissionLog make_log(double start, int entries, int flavor) {
  radio::TransmissionLog log;
  double t = start;
  for (int i = 0; i < entries; ++i) {
    radio::Transmission tx;
    tx.start = t;
    tx.duration = 0.4 + 0.07 * static_cast<double>((flavor + i) % 5);
    tx.bytes = 800 + 150 * static_cast<Bytes>(i);
    tx.kind = i % 3 == 0 ? radio::TxKind::kHeartbeat : radio::TxKind::kData;
    tx.app_id = flavor % 2;
    tx.packet_id = tx.kind == radio::TxKind::kData ? i : -1;
    log.add(tx);
    t = tx.end() + 1.0 + 0.6 * static_cast<double>(flavor % 3);
  }
  return log;
}

gateway::SessionFoldRecord make_record(std::uint64_t client_id,
                                       std::uint64_t seq, int entries,
                                       int flavor) {
  gateway::SessionFoldRecord record;
  record.client_id = client_id;
  record.seq = seq;
  record.counters.heartbeats = 2 + client_id;
  record.counters.enqueued = 5 + seq;
  record.counters.piggybacked = 3;
  record.counters.dripped = 1 + seq;
  record.counters.flushed = 1;
  record.log = make_log(1.0 + static_cast<double>(flavor), entries, flavor);
  record.horizon = record.log.last_end() + 60.0;
  return record;
}

/// A frozen copy of the pre-shard gateway's close-time fold (the old
/// Gateway::fold_session), replayed per record in close order. The
/// one-shard fold_shards must reproduce its accumulation bit for bit.
struct FrozenFold {
  gateway::GatewayStats stats;
  obs::EnergyLedger ledger;
};

void frozen_fold_session(FrozenFold& fold,
                         const gateway::SessionFoldRecord& record,
                         const radio::PowerModel& model) {
  fold.stats.heartbeats += record.counters.heartbeats;
  fold.stats.packets_enqueued += record.counters.enqueued;
  fold.stats.packets_piggybacked += record.counters.piggybacked;
  fold.stats.packets_dripped += record.counters.dripped;
  fold.stats.packets_flushed += record.counters.flushed;
  fold.stats.transmissions += record.log.size();
  if (record.log.empty()) return;
  fold.stats.meter_total_J +=
      radio::measure_energy(record.log, model, record.horizon)
          .network_energy();
  obs::append_ledger(fold.ledger, "cellular", record.log, model,
                     record.horizon);
}

void expect_ledgers_identical(const obs::EnergyLedger& a,
                              const obs::EnergyLedger& b) {
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].interface_name, b.rows[i].interface_name);
    EXPECT_EQ(a.rows[i].kind, b.rows[i].kind);
    EXPECT_EQ(a.rows[i].app, b.rows[i].app);
    // Exact equality on purpose: the fold contract is bit-identity, not
    // tolerance — FP accumulation order is pinned.
    EXPECT_EQ(a.rows[i].tx_J, b.rows[i].tx_J);
    EXPECT_EQ(a.rows[i].setup_J, b.rows[i].setup_J);
    EXPECT_EQ(a.rows[i].tail_J, b.rows[i].tail_J);
    EXPECT_EQ(a.rows[i].transmissions, b.rows[i].transmissions);
    EXPECT_EQ(a.rows[i].airtime_s, b.rows[i].airtime_s);
  }
}

/// First sample of metric `name` in a Prometheus text body; -1 when
/// absent.
double prom_value(const std::string& body, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t pos = 0;
  while (pos < body.size()) {
    if (body.compare(pos, needle.size(), needle) == 0) {
      return std::strtod(body.c_str() + pos + needle.size(), nullptr);
    }
    const std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return -1.0;
}

obs::ReportCheckResult checked(const std::string& path) {
  const obs::ReportCheckResult result = obs::check_run_report_file(path);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.gateway_present);
  return result;
}

TEST(GatewayFold, SingleShardPreservesCloseOrderAndMatchesTheFrozenFold) {
  const radio::PowerModel model = radio::PowerModel::PaperSimulation();
  // Close order is deliberately NOT sorted by client id: the one-shard
  // fold must replay it verbatim (that is what keeps a --shards 1 report
  // byte-identical to the pre-shard gateway).
  const std::uint64_t close_order[3] = {7, 3, 9};

  FrozenFold frozen;
  auto make_contribution = [&] {
    gateway::ShardContribution contribution;
    contribution.io.clients_accepted = 3;
    contribution.io.clients_disconnected = 3;
    for (std::uint64_t seq = 0; seq < 3; ++seq) {
      contribution.records.push_back(make_record(
          close_order[seq], seq, 4 + static_cast<int>(seq),
          static_cast<int>(seq)));
    }
    return contribution;
  };
  for (const gateway::SessionFoldRecord& record :
       make_contribution().records) {
    frozen_fold_session(frozen, record, model);
  }

  std::vector<gateway::ShardContribution> shards;
  shards.push_back(make_contribution());
  const gateway::GatewayFold fold =
      gateway::fold_shards(std::move(shards), model);

  EXPECT_EQ(fold.stats.clients_accepted, 3u);
  EXPECT_EQ(fold.stats.heartbeats, frozen.stats.heartbeats);
  EXPECT_EQ(fold.stats.packets_enqueued, frozen.stats.packets_enqueued);
  EXPECT_EQ(fold.stats.packets_piggybacked,
            frozen.stats.packets_piggybacked);
  EXPECT_EQ(fold.stats.packets_dripped, frozen.stats.packets_dripped);
  EXPECT_EQ(fold.stats.packets_flushed, frozen.stats.packets_flushed);
  EXPECT_EQ(fold.stats.transmissions, frozen.stats.transmissions);
  EXPECT_EQ(fold.stats.meter_total_J, frozen.stats.meter_total_J);
  expect_ledgers_identical(fold.ledger, frozen.ledger);

  // Digests ride in fold order — close order, for one shard.
  ASSERT_EQ(fold.sessions.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fold.sessions[i].client_id, close_order[i]);
    EXPECT_EQ(fold.sessions[i].shard, 0);
  }
}

TEST(GatewayFold, MultiShardFoldIsIndependentOfRecordOrder) {
  const radio::PowerModel model = radio::PowerModel::PaperSimulation();
  // Two shards x three sessions, constructed in two different close
  // orders. A multi-shard fold sorts records by (client_id, accept seq)
  // within each shard, so both interleavings must fold identically.
  auto make_contributions = [&](bool permuted) {
    std::vector<gateway::ShardContribution> shards(2);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> shard0 = {
        {11, 0}, {4, 1}, {29, 2}};
    std::vector<std::pair<std::uint64_t, std::uint64_t>> shard1 = {
        {16, 0}, {2, 1}, {8, 2}};
    if (permuted) {
      std::swap(shard0[0], shard0[2]);
      std::swap(shard1[0], shard1[1]);
    }
    for (const auto& [client, seq] : shard0) {
      shards[0].records.push_back(make_record(
          client, seq, 3 + static_cast<int>(seq), static_cast<int>(client)));
    }
    for (const auto& [client, seq] : shard1) {
      shards[1].records.push_back(make_record(
          client, seq, 2 + static_cast<int>(seq), static_cast<int>(client)));
    }
    shards[0].io.clients_accepted = 3;
    shards[1].io.clients_accepted = 3;
    return shards;
  };

  const gateway::GatewayFold a =
      gateway::fold_shards(make_contributions(false), model);
  const gateway::GatewayFold b =
      gateway::fold_shards(make_contributions(true), model);

  EXPECT_EQ(a.stats.clients_accepted, 6u);
  EXPECT_EQ(a.stats.heartbeats, b.stats.heartbeats);
  EXPECT_EQ(a.stats.packets_enqueued, b.stats.packets_enqueued);
  EXPECT_EQ(a.stats.transmissions, b.stats.transmissions);
  EXPECT_EQ(a.stats.meter_total_J, b.stats.meter_total_J);
  expect_ledgers_identical(a.ledger, b.ledger);

  // Digest order is canonical: shard 0's records sorted by client id,
  // then shard 1's.
  ASSERT_EQ(a.sessions.size(), 6u);
  const std::uint64_t expected[6] = {4, 11, 29, 2, 8, 16};
  const int expected_shard[6] = {0, 0, 0, 1, 1, 1};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a.sessions[i].client_id, expected[i]);
    EXPECT_EQ(a.sessions[i].shard, expected_shard[i]);
    EXPECT_EQ(b.sessions[i].client_id, expected[i]);
  }
}

TEST(GatewayShards, HandoffPinsEverySessionToExactlyOneShard) {
  gateway::GatewayConfig config;
  config.time_scale = 100.0;
  config.shards = 2;
  config.accept_mode = gateway::GatewayConfig::AcceptMode::kHandoff;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  const int port = gw.open();
  ASSERT_GT(port, 0);
  EXPECT_TRUE(gw.handoff_mode());
  std::thread server([&] { gw.run(); });

  gateway::LoadGenConfig load;
  load.port = port;
  load.clients = 8;
  load.duration = 20.0;
  load.time_scale = config.time_scale;
  const gateway::LoadGenResult result = gateway::run_load(load);

  gw.request_stop();
  server.join();

  EXPECT_TRUE(result.all_connected(load));
  EXPECT_EQ(result.acks_received, result.cargos_sent);
  const gateway::GatewayStats& stats = gw.stats();
  EXPECT_EQ(stats.clients_accepted, 8u);
  EXPECT_EQ(stats.clients_accepted,
            stats.clients_disconnected + stats.clients_at_shutdown);

  // Every client folded on exactly one shard, and the round-robin deal
  // split them evenly across both.
  std::set<std::uint64_t> seen;
  std::map<int, int> per_shard;
  for (const gateway::SessionDigest& digest : gw.session_digests()) {
    EXPECT_TRUE(seen.insert(digest.client_id).second)
        << "client " << digest.client_id << " folded on two shards";
    ++per_shard[digest.shard];
  }
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(per_shard[0], 4);
  EXPECT_EQ(per_shard[1], 4);
}

TEST(GatewayShards, ReusePortShardsServeAndFoldUnderLoad) {
  const std::string report_path = "gateway_shard_reuseport.report.json";
  gateway::GatewayConfig config;
  config.time_scale = 100.0;
  config.shards = 4;
  config.stats_port = 0;
  config.report_path = report_path;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  const int port = gw.open();
  const int stats_port = gw.stats_port();
  ASSERT_GT(stats_port, 0);
  std::thread server([&] { gw.run(); });

  gateway::LoadGenConfig load;
  load.port = port;
  load.clients = 64;
  load.duration = 30.0;
  load.time_scale = config.time_scale;
  const gateway::LoadGenResult result = gateway::run_load(load);

  // Post-drain scrape (the gateway is still serving): the shard-labeled
  // families are present alongside the aggregated classics.
  std::string body;
  ASSERT_EQ(obs::http_get(stats_port, "/metrics", &body), 200);
  EXPECT_EQ(prom_value(body, "etrain_gateway_shards"), 4.0);
  for (int shard = 0; shard < 4; ++shard) {
    const std::string sample = "etrain_gateway_shard_connections{shard=\"" +
                               std::to_string(shard) + "\"}";
    EXPECT_NE(body.find(sample), std::string::npos) << sample;
  }

  gw.request_stop();
  server.join();

  EXPECT_TRUE(result.all_connected(load));
  EXPECT_EQ(result.acks_received, result.cargos_sent);
  EXPECT_EQ(result.protocol_errors, 0u);
  const gateway::GatewayStats& stats = gw.stats();
  EXPECT_EQ(stats.clients_accepted, 64u);
  EXPECT_EQ(stats.clients_accepted,
            stats.clients_disconnected + stats.clients_at_shutdown);
  EXPECT_EQ(stats.packets_enqueued, stats.packets_piggybacked +
                                        stats.packets_dripped +
                                        stats.packets_flushed);
  EXPECT_EQ(stats.transmissions, stats.heartbeats + stats.packets_enqueued);

  // Session digests partition the population, and their counters sum to
  // the folded totals.
  std::set<std::uint64_t> seen;
  std::uint64_t heartbeats = 0, enqueued = 0, transmissions = 0;
  for (const gateway::SessionDigest& digest : gw.session_digests()) {
    EXPECT_TRUE(seen.insert(digest.client_id).second);
    heartbeats += digest.counters.heartbeats;
    enqueued += digest.counters.enqueued;
    transmissions += digest.transmissions;
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(heartbeats, stats.heartbeats);
  EXPECT_EQ(enqueued, stats.packets_enqueued);
  EXPECT_EQ(transmissions, stats.transmissions);

  // The manifest passes report_check's gateway invariants at shard count
  // 4: exact partitions, ledger re-bills the summed session meters.
  const obs::ReportCheckResult report = checked(report_path);
  EXPECT_EQ(report.gateway_clients, 64.0);
  ASSERT_TRUE(report.gateway_meter_J.has_value());
  ASSERT_TRUE(report.ledger_total_J.has_value());
  EXPECT_NEAR(*report.ledger_total_J, *report.gateway_meter_J, 64 * 1e-9);
  std::remove(report_path.c_str());
}

TEST(GatewayShards, SigtermMidLoadDrainsEveryShard) {
  const std::string report_path = "gateway_shard_sigterm.report.json";
  gateway::GatewayConfig config;
  config.time_scale = 50.0;
  config.shards = 2;
  config.report_path = report_path;
  gateway::Gateway gw(baselines::builtin_registry(), config);
  const int port = gw.open();
  gw.install_signal_handlers();
  std::thread server([&] { gw.run(); });

  // SIGTERM lands mid-drive, while clients on BOTH shards still hold
  // queued cargo — the fan-out must stop every shard and the shutdown
  // flush must drain them all.
  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    std::raise(SIGTERM);
  });

  gateway::LoadGenConfig load;
  load.port = port;
  load.clients = 16;
  load.duration = 60.0;
  load.time_scale = config.time_scale;
  load.drain_timeout_s = 5.0;
  const gateway::LoadGenResult result = gateway::run_load(load);
  killer.join();
  server.join();
  gw.restore_signal_handlers();

  EXPECT_TRUE(result.all_connected(load));
  const gateway::GatewayStats& stats = gw.stats();
  EXPECT_GT(stats.clients_at_shutdown, 0u);
  EXPECT_EQ(stats.clients_accepted,
            stats.clients_disconnected + stats.clients_at_shutdown);
  EXPECT_EQ(stats.packets_enqueued, stats.packets_piggybacked +
                                        stats.packets_dripped +
                                        stats.packets_flushed);
  EXPECT_EQ(stats.transmissions, stats.heartbeats + stats.packets_enqueued);

  // Every client folded exactly once, across both shards.
  std::set<std::uint64_t> seen;
  std::set<int> shards_used;
  for (const gateway::SessionDigest& digest : gw.session_digests()) {
    EXPECT_TRUE(seen.insert(digest.client_id).second);
    shards_used.insert(digest.shard);
  }
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_EQ(shards_used.size(), 2u);

  const obs::ReportCheckResult report = checked(report_path);
  EXPECT_EQ(report.gateway_clients, 16.0);
  ASSERT_TRUE(report.gateway_meter_J.has_value());
  ASSERT_TRUE(report.ledger_total_J.has_value());
  EXPECT_NEAR(*report.ledger_total_J, *report.gateway_meter_J, 16 * 1e-9);
  std::remove(report_path.c_str());
}

}  // namespace
