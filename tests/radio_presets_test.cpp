// Invariants that must hold for every shipped radio parameter set.
#include <gtest/gtest.h>

#include "radio/power_model.h"

namespace etrain::radio {
namespace {

struct NamedModel {
  const char* name;
  PowerModel model;
};

std::vector<NamedModel> all_presets() {
  return {
      {"PaperUmts3G", PowerModel::PaperUmts3G()},
      {"PaperSimulation", PowerModel::PaperSimulation()},
      {"Realistic3G", PowerModel::Realistic3G()},
      {"FastDormancy3G", PowerModel::FastDormancy3G()},
      {"LteDrx", PowerModel::LteDrx()},
      {"WifiPsm", PowerModel::WifiPsm()},
  };
}

class RadioPresets : public ::testing::TestWithParam<NamedModel> {};

TEST_P(RadioPresets, PowersNonNegativeAndOrdered) {
  const PowerModel& m = GetParam().model;
  EXPECT_GE(m.idle_power, 0.0);
  EXPECT_GT(m.dch_extra_power, 0.0);
  EXPECT_GE(m.fach_extra_power, 0.0);
  // Active transmission burns at least as much as camping on DCH.
  EXPECT_GE(m.tx_extra_power, m.dch_extra_power);
  // DCH is the most expensive non-transmitting state.
  EXPECT_GE(m.dch_extra_power, m.fach_extra_power);
}

TEST_P(RadioPresets, TimersNonNegative) {
  const PowerModel& m = GetParam().model;
  EXPECT_GT(m.dch_tail, 0.0);
  EXPECT_GE(m.fach_tail, 0.0);
  EXPECT_GE(m.idle_to_dch_delay, 0.0);
  EXPECT_GE(m.fach_to_dch_delay, 0.0);
  // Waking from deeper sleep cannot be faster than from shallow sleep.
  EXPECT_GE(m.idle_to_dch_delay, m.fach_to_dch_delay);
}

TEST_P(RadioPresets, TailEnergyClosedFormConsistency) {
  const PowerModel& m = GetParam().model;
  EXPECT_DOUBLE_EQ(m.tail_energy(0.0), 0.0);
  EXPECT_NEAR(m.tail_energy(m.tail_time()), m.full_tail_energy(), 1e-12);
  EXPECT_NEAR(m.tail_energy(m.tail_time() * 10.0), m.full_tail_energy(),
              1e-12);
  // Monotone nondecreasing over a dense sweep.
  double prev = -1.0;
  for (double g = 0.0; g <= m.tail_time() * 1.5; g += m.tail_time() / 64.0) {
    const double e = m.tail_energy(g);
    EXPECT_GE(e, prev - 1e-12) << GetParam().name << " at gap " << g;
    prev = e;
  }
}

TEST_P(RadioPresets, ExtraPowerMatchesStateTable) {
  const PowerModel& m = GetParam().model;
  EXPECT_DOUBLE_EQ(m.extra_power(RrcState::kIdle), 0.0);
  EXPECT_DOUBLE_EQ(m.extra_power(RrcState::kDch), m.dch_extra_power);
  EXPECT_DOUBLE_EQ(m.extra_power(RrcState::kFach), m.fach_extra_power);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, RadioPresets,
                         ::testing::ValuesIn(all_presets()),
                         [](const ::testing::TestParamInfo<NamedModel>& i) {
                           return i.param.name;
                         });

TEST(RadioPresetRelations, SimulationTailIsShorterThanDevice) {
  EXPECT_LT(PowerModel::PaperSimulation().full_tail_energy(),
            PowerModel::PaperUmts3G().full_tail_energy());
  EXPECT_DOUBLE_EQ(PowerModel::PaperSimulation().tail_time(), 10.0);
}

TEST(RadioPresetRelations, FastDormancyTradesTailForPromotions) {
  const auto fd = PowerModel::FastDormancy3G();
  const auto normal = PowerModel::PaperUmts3G();
  EXPECT_LT(fd.full_tail_energy(), 0.1 * normal.full_tail_energy());
  EXPECT_GT(fd.idle_to_dch_delay, 0.0);
}

TEST(RadioPresetRelations, WifiTailIsTiny) {
  const auto wifi = PowerModel::WifiPsm();
  EXPECT_LT(wifi.full_tail_energy(), 0.2);
  EXPECT_DOUBLE_EQ(wifi.idle_power, 0.0);
}

}  // namespace
}  // namespace etrain::radio
