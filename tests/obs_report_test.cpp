// End-to-end tests for the RunReport subsystem: report building from real
// runs, report_check validation, the ledger == meter invariant, the
// determinism contract (compared sections byte-identical across runs and
// jobs counts), degenerate runs, CSV artifact cross-validation, the trace
// cross-check, and the golden fixture under tests/data/.
#include "obs/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/registry.h"
#include "exp/figure_export.h"
#include "exp/run_report.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "obs/exporters.h"
#include "obs/report_check.h"
#include "obs/trace_buffer.h"
#include "obs/trace_check.h"

namespace etrain::obs {
namespace {

using experiments::Scenario;
using experiments::ScenarioBuilder;
using experiments::run_slotted;

Scenario small_scenario() {
  return ScenarioBuilder()
      .lambda(0.08)
      .horizon(1800.0)
      .model(radio::PowerModel::PaperSimulation())
      .build();
}

experiments::RunMetrics run_with_registry(const Scenario& s,
                                          const std::string& spec) {
  const auto policy = baselines::make_policy(spec);
  Registry registry;
  return run_slotted(s, *policy, Observers{nullptr, &registry});
}

std::string serialize(const RunReport& report) {
  std::ostringstream out;
  write_run_report(out, report);
  return out.str();
}

/// The compared prefix: everything before the non-compared `environment`
/// section (docs/determinism.md).
std::string compared_prefix(const std::string& json) {
  const auto pos = json.find("\"environment\"");
  return pos == std::string::npos ? json : json.substr(0, pos);
}

TEST(RunReport, ValidatesAndLedgerMatchesMeter) {
  const Scenario s = small_scenario();
  const auto m = run_with_registry(s, "etrain:theta=1,k=20");
  ASSERT_GT(m.log.size(), 0u);

  const RunReport report =
      experiments::report_for_run("report_test", s, m);
  const auto result = check_run_report(serialize(report));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.bench, "report_test");
  EXPECT_EQ(result.version, kReportSchemaVersion);
  EXPECT_TRUE(result.metrics_present);
  EXPECT_GT(result.ledger_rows, 0u);

  // The headline invariant: the attribution ledger re-bills the meter's
  // totals exactly.
  ASSERT_TRUE(report.ledger.has_value());
  EXPECT_NEAR(report.ledger->total(), m.network_energy(), 1e-9);
  EXPECT_NEAR(report.ledger->kind_total(radio::TxKind::kHeartbeat) +
                  report.ledger->kind_total(radio::TxKind::kData),
              m.network_energy(), 1e-9);
  EXPECT_NEAR(*result.ledger_total_J, *result.network_J, 1e-9);
}

TEST(RunReport, ComparedSectionsAreByteIdenticalAcrossRuns) {
  const Scenario s = small_scenario();
  const auto m1 = run_with_registry(s, "etrain:theta=1,k=20");
  const auto m2 = run_with_registry(s, "etrain:theta=1,k=20");

  RunReport r1 = experiments::report_for_run("determinism", s, m1);
  RunReport r2 = experiments::report_for_run("determinism", s, m2);
  // Different environment / profile facts must not leak into the compared
  // prefix: stamp them differently on purpose.
  r1.add_environment("jobs", 1.0);
  r2.add_environment("jobs", 8.0);

  const std::string j1 = serialize(r1);
  const std::string j2 = serialize(r2);
  EXPECT_NE(j1, j2);  // the environment sections differ...
  EXPECT_EQ(compared_prefix(j1), compared_prefix(j2));  // ...nothing else
  EXPECT_NE(compared_prefix(j1).find("\"ledger\""), std::string::npos);
}

TEST(RunReport, ZeroTransmissionRunStillValidates) {
  // No cargo, no trains: the meter bills nothing, the ledger is empty, and
  // the report must still pass every check.
  const Scenario s = ScenarioBuilder()
                         .trains(0)
                         .horizon(600.0)
                         .model(radio::PowerModel::PaperSimulation())
                         .packets({}, {})
                         .build();
  const auto m = run_with_registry(s, "baseline");
  EXPECT_EQ(m.log.size(), 0u);

  const RunReport report = experiments::report_for_run("degenerate", s, m);
  const auto result = check_run_report(serialize(report));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.ledger_rows, 0u);
  ASSERT_TRUE(result.network_J.has_value());
  EXPECT_NEAR(*result.network_J, 0.0, 1e-12);
}

TEST(RunReport, TotalLossRunValidatesWithFailedAirtime) {
  const Scenario s = ScenarioBuilder()
                         .lambda(0.08)
                         .horizon(1800.0)
                         .model(radio::PowerModel::PaperSimulation())
                         .loss(1.0)
                         .fault_seed(7)
                         .build();
  const auto m = run_with_registry(s, "etrain:theta=1,k=20");

  const RunReport report = experiments::report_for_run("total_loss", s, m);
  const auto result = check_run_report(serialize(report));
  ASSERT_TRUE(result.ok) << result.error;

  // Under loss = 1.0 every cargo attempt fails; the wasted joules must be
  // visible in the ledger overlay and still reconcile with the meter.
  ASSERT_TRUE(report.ledger.has_value());
  double failed_airtime_J = 0.0;
  for (const auto& row : report.ledger->rows) {
    failed_airtime_J += row.failed_airtime_J;
    EXPECT_LE(row.failed_airtime_J, row.tx_J + row.setup_J + 1e-9);
  }
  if (m.log.failed_count() > 0) {
    EXPECT_GT(failed_airtime_J, 0.0);
  }
  EXPECT_NEAR(report.ledger->total(), m.network_energy(), 1e-9);
}

// The trace cross-checks need real TraceEvents; with observability
// compiled out the sinks record nothing, so a trace carrying a nonzero
// RunSummary cannot exist (TailCharge sum 0 != reported tail).
#ifndef ETRAIN_OBS_DISABLED
TEST(RunReport, TraceCrossCheckAgreesForSameRun) {
  const Scenario s = small_scenario();
  TraceBuffer buffer;
  Registry registry;
  const auto policy = baselines::make_policy("etrain:theta=1,k=20");
  const auto m = run_slotted(s, *policy, Observers{&buffer, &registry});

  RunSummary summary;
  summary.tail_energy_joules =
      m.energy.tail_energy() + m.wifi_energy.tail_energy();
  summary.network_energy_joules = m.network_energy();
  summary.transmissions = m.log.size() + m.wifi_log.size();
  std::ostringstream trace_out;
  write_chrome_trace(trace_out, buffer.events(), &m.log, &summary);
  const auto trace = check_chrome_trace(trace_out.str());
  ASSERT_TRUE(trace.ok) << trace.error;

  const RunReport report = experiments::report_for_run("traced", s, m);
  const auto result = check_run_report(serialize(report));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(cross_check_trace(result, trace), "");
}

TEST(RunReport, TraceCrossCheckRejectsForeignTrace) {
  const Scenario s = small_scenario();
  const auto m_etrain = run_with_registry(s, "etrain:theta=1,k=20");

  // A perfectly valid trace — but from a *different* policy's run.
  TraceBuffer buffer;
  const auto policy = baselines::make_policy("baseline");
  const auto m_base = run_slotted(s, *policy, Observers{&buffer, nullptr});
  ASSERT_NE(m_etrain.network_energy(), m_base.network_energy());

  RunSummary summary;
  summary.tail_energy_joules = m_base.energy.tail_energy();
  summary.network_energy_joules = m_base.network_energy();
  summary.transmissions = m_base.log.size();
  std::ostringstream trace_out;
  write_chrome_trace(trace_out, buffer.events(), &m_base.log, &summary);
  const auto trace = check_chrome_trace(trace_out.str());
  ASSERT_TRUE(trace.ok) << trace.error;

  const auto result = check_run_report(
      serialize(experiments::report_for_run("mismatch", s, m_etrain)));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_NE(cross_check_trace(result, trace), "");
}
#endif  // !ETRAIN_OBS_DISABLED

TEST(RunReport, ArtifactCrossCheckCatchesDrift) {
  const std::string dir = ::testing::TempDir() + "report_artifacts";
  ArtifactLog::global().clear();
  const std::vector<experiments::EDPoint> frontier = {
      {0.5, 900.25, 20.5, 0.01}, {1.0, 750.125, 40.25, 0.02}};
  experiments::export_frontier(experiments::ensure_results_dir(dir),
                               "frontier_test", frontier);

  RunReport report;
  report.bench = "artifact_test";
  report.add_provenance("policy_spec", "etrain:theta=1");
  report.artifacts = ArtifactLog::global().snapshot();
  ArtifactLog::global().clear();
  ASSERT_EQ(report.artifacts.size(), 1u);

  const auto result = check_run_report(serialize(report));
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.artifacts.size(), 1u);
  EXPECT_EQ(result.artifacts[0].rows, frontier.size());
  EXPECT_EQ(cross_check_artifacts(result), "");

  // Tamper with one cell: the re-summed column no longer matches.
  {
    std::ifstream in(report.artifacts[0].file);
    std::stringstream content;
    content << in.rdbuf();
    std::string text = content.str();
    const auto pos = text.find("900.25");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 6, "901.25");
    std::ofstream out(report.artifacts[0].file);
    out << text;
  }
  EXPECT_NE(cross_check_artifacts(result), "");
}

TEST(RunReport, RejectsCorruptedLedger) {
  const Scenario s = small_scenario();
  const auto m = run_with_registry(s, "etrain:theta=1,k=20");
  RunReport report = experiments::report_for_run("corrupt", s, m);
  ASSERT_TRUE(report.ledger.has_value());
  ASSERT_FALSE(report.ledger->rows.empty());
  report.ledger->rows[0].tail_J += 1.0;  // break tail attribution
  const auto result = check_run_report(serialize(report));
  EXPECT_FALSE(result.ok);
}

TEST(RunReport, FileRoundTripAndFinalize) {
  const Scenario s = small_scenario();
  const auto m = run_with_registry(s, "etrain:theta=2,k=20");
  RunReport report = experiments::report_for_run("roundtrip", s, m);
  const std::string path = ::testing::TempDir() + "roundtrip_report.json";
  finalize_run_report(path, std::move(report));
  const auto result = check_run_report_file(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.bench, "roundtrip");
  std::remove(path.c_str());
}

TEST(RunReport, GoldenFixtureStillValidates) {
  // A frozen report emitted by an earlier build: schema v1 files must keep
  // validating forever (bump kReportSchemaVersion instead of breaking
  // them).
  const std::string path =
      std::string(ETRAIN_TEST_DATA_DIR) + "/golden_report.json";
  const auto result = check_run_report_file(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.version, 1);
  EXPECT_FALSE(result.bench.empty());
  EXPECT_GT(result.ledger_rows, 0u);
  ASSERT_TRUE(result.network_J.has_value());
  ASSERT_TRUE(result.ledger_total_J.has_value());
  EXPECT_NEAR(*result.network_J, *result.ledger_total_J, 1e-9);
}

#ifdef ETRAIN_OBS_DISABLED
TEST(RunReport, DisabledBuildStillEmitsManifestAndEnergy) {
  // Under ETRAIN_OBS_DISABLED the profiler compiles out and registries are
  // inert, but the provenance manifest, energy section and ledger must
  // still be produced and validate.
  const Scenario s = small_scenario();
  const auto m = run_with_registry(s, "etrain:theta=1,k=20");
  const RunReport report = experiments::report_for_run("disabled", s, m);
  EXPECT_FALSE(report.profile.has_value());
  const auto result = check_run_report(serialize(report));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.obs_enabled);
  EXPECT_GT(result.ledger_rows, 0u);
}
#endif

}  // namespace
}  // namespace etrain::obs
