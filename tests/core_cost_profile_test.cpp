#include "core/cost_profile.h"

#include <gtest/gtest.h>

namespace etrain::core {
namespace {

// Fig. 6 / Sec. VI-A "Profile functions".

TEST(MailProfile, ZeroBeforeDeadline) {
  const auto& f1 = mail_cost_profile();
  EXPECT_DOUBLE_EQ(f1.cost(0.0, 60.0), 0.0);
  EXPECT_DOUBLE_EQ(f1.cost(30.0, 60.0), 0.0);
  EXPECT_DOUBLE_EQ(f1.cost(60.0, 60.0), 0.0);
}

TEST(MailProfile, LinearAfterDeadline) {
  const auto& f1 = mail_cost_profile();
  // f1(d) = d/deadline - 1 for d >= deadline.
  EXPECT_DOUBLE_EQ(f1.cost(90.0, 60.0), 0.5);
  EXPECT_DOUBLE_EQ(f1.cost(120.0, 60.0), 1.0);
  EXPECT_DOUBLE_EQ(f1.cost(180.0, 60.0), 2.0);
}

TEST(WeiboProfile, RampThenConstant) {
  const auto& f2 = weibo_cost_profile();
  // f2(d) = d/deadline below the deadline, 2 afterwards.
  EXPECT_DOUBLE_EQ(f2.cost(0.0, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(f2.cost(15.0, 30.0), 0.5);
  EXPECT_DOUBLE_EQ(f2.cost(30.0, 30.0), 1.0);
  EXPECT_DOUBLE_EQ(f2.cost(31.0, 30.0), 2.0);
  EXPECT_DOUBLE_EQ(f2.cost(1e6, 30.0), 2.0);
}

TEST(CloudProfile, RampThenSteeper) {
  const auto& f3 = cloud_cost_profile();
  // f3(d) = d/deadline below the deadline, 3*(d/deadline) - 2 afterwards.
  EXPECT_DOUBLE_EQ(f3.cost(60.0, 120.0), 0.5);
  EXPECT_DOUBLE_EQ(f3.cost(120.0, 120.0), 1.0);
  EXPECT_DOUBLE_EQ(f3.cost(240.0, 120.0), 4.0);
  EXPECT_DOUBLE_EQ(f3.cost(360.0, 120.0), 7.0);
}

TEST(CloudProfile, ContinuousAtDeadline) {
  const auto& f3 = cloud_cost_profile();
  EXPECT_NEAR(f3.cost(120.0 - 1e-9, 120.0), f3.cost(120.0 + 1e-9, 120.0),
              1e-6);
}

TEST(Profiles, NegativeDelayIsFree) {
  for (const CostProfile* p :
       {static_cast<const CostProfile*>(&mail_cost_profile()),
        static_cast<const CostProfile*>(&weibo_cost_profile()),
        static_cast<const CostProfile*>(&cloud_cost_profile())}) {
    EXPECT_DOUBLE_EQ(p->cost(-5.0, 60.0), 0.0) << p->name();
  }
}

// Property: all shipped profiles are monotone nondecreasing in delay.
class ProfileMonotonicity
    : public ::testing::TestWithParam<const CostProfile*> {};

TEST_P(ProfileMonotonicity, NondecreasingInDelay) {
  const CostProfile* p = GetParam();
  const double deadline = 60.0;
  double prev = -1.0;
  for (double d = -10.0; d <= 400.0; d += 2.5) {
    const double c = p->cost(d, deadline);
    EXPECT_GE(c, 0.0) << p->name() << " at d=" << d;
    EXPECT_GE(c, prev - 1e-12) << p->name() << " at d=" << d;
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileMonotonicity,
                         ::testing::Values(&mail_cost_profile(),
                                           &weibo_cost_profile(),
                                           &cloud_cost_profile()));

// Property: cost scales with the deadline — the same relative lateness
// produces the same cost for every deadline.
class ProfileDeadlineScaling : public ::testing::TestWithParam<double> {};

TEST_P(ProfileDeadlineScaling, RelativeLatenessInvariant) {
  const double deadline = GetParam();
  EXPECT_DOUBLE_EQ(weibo_cost_profile().cost(0.5 * deadline, deadline), 0.5);
  EXPECT_DOUBLE_EQ(mail_cost_profile().cost(1.5 * deadline, deadline), 0.5);
  EXPECT_DOUBLE_EQ(cloud_cost_profile().cost(2.0 * deadline, deadline), 4.0);
}

INSTANTIATE_TEST_SUITE_P(Deadlines, ProfileDeadlineScaling,
                         ::testing::Values(10.0, 30.0, 60.0, 120.0, 180.0,
                                           600.0));

TEST(ProfileRegistry, LookupByName) {
  EXPECT_EQ(cost_profile_by_name("f1-mail"), &mail_cost_profile());
  EXPECT_EQ(cost_profile_by_name("f2-weibo"), &weibo_cost_profile());
  EXPECT_EQ(cost_profile_by_name("f3-cloud"), &cloud_cost_profile());
  EXPECT_EQ(cost_profile_by_name("nonsense"), nullptr);
}

}  // namespace
}  // namespace etrain::core
