#include "radio/energy_meter.h"

#include <gtest/gtest.h>

namespace etrain::radio {
namespace {

Transmission tx(TimePoint start, Duration duration, Bytes bytes = 1000,
                TxKind kind = TxKind::kData, int app = 0,
                std::int64_t packet = -1) {
  Transmission t;
  t.start = start;
  t.duration = duration;
  t.bytes = bytes;
  t.kind = kind;
  t.app_id = app;
  t.packet_id = packet;
  return t;
}

TEST(TransmissionLog, RejectsOutOfOrderAndOverlap) {
  TransmissionLog log;
  log.add(tx(10.0, 2.0));
  EXPECT_THROW(log.add(tx(5.0, 1.0)), std::invalid_argument);   // out of order
  EXPECT_THROW(log.add(tx(11.0, 1.0)), std::invalid_argument);  // overlap
  log.add(tx(12.0, 1.0));  // exactly adjacent is fine
  EXPECT_EQ(log.size(), 2u);
}

TEST(TransmissionLog, RejectsNegativeDurations) {
  TransmissionLog log;
  EXPECT_THROW(log.add(tx(0.0, -1.0)), std::invalid_argument);
}

TEST(TransmissionLog, ByteAndKindAccounting) {
  TransmissionLog log;
  log.add(tx(0.0, 1.0, 100, TxKind::kHeartbeat));
  log.add(tx(10.0, 1.0, 5000, TxKind::kData));
  log.add(tx(20.0, 1.0, 2000, TxKind::kData));
  EXPECT_EQ(log.total_bytes(), 7100);
  EXPECT_EQ(log.total_bytes(TxKind::kHeartbeat), 100);
  EXPECT_EQ(log.total_bytes(TxKind::kData), 7000);
  EXPECT_EQ(log.count(TxKind::kHeartbeat), 1u);
  EXPECT_EQ(log.count(TxKind::kData), 2u);
  EXPECT_DOUBLE_EQ(log.last_end(), 21.0);
}

TEST(EnergyMeter, EmptyLogIsPureIdle) {
  const PowerModel m = PowerModel::PaperUmts3G();
  const auto report = measure_energy(TransmissionLog{}, m, 1000.0);
  EXPECT_DOUBLE_EQ(report.idle_baseline, m.idle_power * 1000.0);
  EXPECT_DOUBLE_EQ(report.network_energy(), 0.0);
  EXPECT_DOUBLE_EQ(report.total_energy(), report.idle_baseline);
  EXPECT_EQ(report.transmissions, 0u);
}

TEST(EnergyMeter, SingleTransmissionFullTail) {
  const PowerModel m = PowerModel::PaperUmts3G();
  TransmissionLog log;
  log.add(tx(100.0, 2.0));
  const auto report = measure_energy(log, m, 1000.0);
  EXPECT_DOUBLE_EQ(report.tx_energy, m.tx_extra_power * 2.0);
  EXPECT_DOUBLE_EQ(report.tail_energy(), m.full_tail_energy());
  EXPECT_DOUBLE_EQ(report.dch_tail_energy, m.dch_extra_power * m.dch_tail);
  EXPECT_DOUBLE_EQ(report.fach_tail_energy, m.fach_extra_power * m.fach_tail);
  EXPECT_EQ(report.full_tails, 1u);
  EXPECT_EQ(report.truncated_tails, 0u);
}

TEST(EnergyMeter, TailTruncatedByHorizon) {
  const PowerModel m = PowerModel::PaperUmts3G();
  TransmissionLog log;
  log.add(tx(95.0, 2.0));  // ends at 97; only 3 s of tail fit before 100
  const auto report = measure_energy(log, m, 100.0);
  EXPECT_DOUBLE_EQ(report.tail_energy(), m.tail_energy(3.0));
  EXPECT_EQ(report.full_tails, 0u);
  EXPECT_EQ(report.truncated_tails, 1u);
}

TEST(EnergyMeter, GapBetweenTransmissionsUsesClosedForm) {
  const PowerModel m = PowerModel::PaperUmts3G();
  // Sweep gaps covering all four E_tail cases; meter must equal closed form.
  for (const double gap : {0.0, 1.0, 5.0, 10.0, 12.0, 17.5, 20.0, 300.0}) {
    TransmissionLog log;
    log.add(tx(0.0, 1.0));
    log.add(tx(1.0 + gap, 1.0));
    const double horizon = 1.0 + gap + 1.0 + m.tail_time() + 100.0;
    const auto report = measure_energy(log, m, horizon);
    EXPECT_NEAR(report.tail_energy(),
                m.tail_energy(gap) + m.full_tail_energy(), 1e-9)
        << "gap=" << gap;
  }
}

TEST(EnergyMeter, PiggybackedPacketSavesVersusScattered) {
  // The paper's whole premise: one aggregated burst right after a heartbeat
  // costs less than scattered transmissions each paying its own tail.
  const PowerModel m = PowerModel::PaperUmts3G();
  const double horizon = 600.0;

  TransmissionLog scattered;
  scattered.add(tx(0.0, 0.5, 400, TxKind::kHeartbeat));
  for (int i = 1; i <= 5; ++i) {
    scattered.add(tx(60.0 * i, 0.2, 5000, TxKind::kData, 0, i));
  }

  TransmissionLog piggybacked;
  piggybacked.add(tx(0.0, 0.5, 400, TxKind::kHeartbeat));
  double t = 0.5;
  for (int i = 1; i <= 5; ++i) {
    piggybacked.add(tx(t, 0.2, 5000, TxKind::kData, 0, i));
    t += 0.2;
  }

  const auto rep_scattered = measure_energy(scattered, m, horizon);
  const auto rep_piggy = measure_energy(piggybacked, m, horizon);
  EXPECT_LT(rep_piggy.network_energy(), rep_scattered.network_energy());
  // 6 tails collapse into 1: saving should be substantial (> 40 J here).
  EXPECT_GT(rep_scattered.tail_energy() - rep_piggy.tail_energy(), 40.0);
}

TEST(EnergyMeter, PerKindAttribution) {
  const PowerModel m = PowerModel::PaperUmts3G();
  TransmissionLog log;
  log.add(tx(0.0, 1.0, 400, TxKind::kHeartbeat));
  log.add(tx(100.0, 2.0, 5000, TxKind::kData));
  const auto report = measure_energy(log, m, 300.0);
  const auto hb = static_cast<std::size_t>(TxKind::kHeartbeat);
  const auto data = static_cast<std::size_t>(TxKind::kData);
  EXPECT_DOUBLE_EQ(report.tx_energy_by_kind[hb], m.tx_extra_power * 1.0);
  EXPECT_DOUBLE_EQ(report.tx_energy_by_kind[data], m.tx_extra_power * 2.0);
  EXPECT_DOUBLE_EQ(report.tail_energy_by_kind[hb], m.full_tail_energy());
  EXPECT_DOUBLE_EQ(report.tail_energy_by_kind[data], m.full_tail_energy());
  EXPECT_DOUBLE_EQ(
      report.tail_energy(),
      report.tail_energy_by_kind[hb] + report.tail_energy_by_kind[data]);
}

TEST(EnergyMeter, SetupPhaseBilledAtDchPower) {
  PowerModel m = PowerModel::Realistic3G();
  TransmissionLog log;
  Transmission t = tx(10.0, 1.0);
  t.setup = 2.0;
  log.add(t);
  const auto report = measure_energy(log, m, 100.0);
  EXPECT_DOUBLE_EQ(report.setup_energy, m.dch_extra_power * 2.0);
  EXPECT_DOUBLE_EQ(report.tx_energy, m.tx_extra_power * 1.0);
}

TEST(EnergyMeter, PromotionAndColdStartCounting) {
  const PowerModel m = PowerModel::Realistic3G();
  TransmissionLog log;
  Transmission a = tx(0.0, 1.0);
  a.setup = 2.0;  // cold start with promotion
  log.add(a);
  log.add(tx(10.0, 1.0));    // inside the DCH tail: warm, no promotion
  log.add(tx(500.0, 1.0));   // long gap: cold start (no setup recorded)
  const auto report = measure_energy(log, m, 1000.0);
  EXPECT_EQ(report.promotions, 1u);
  EXPECT_EQ(report.cold_starts, 2u);
}

TEST(EnergyMeter, FastDormancyTradesTailForPromotions) {
  // Fast dormancy (Sec. VII related work): 20 isolated transmissions.
  TransmissionLog normal_log, fd_log;
  const PowerModel normal = PowerModel::PaperUmts3G();
  const PowerModel fd = PowerModel::FastDormancy3G();
  for (int i = 0; i < 20; ++i) {
    normal_log.add(tx(100.0 * i, 0.5));
    Transmission t = tx(100.0 * i, 0.5);
    t.setup = fd.idle_to_dch_delay;  // every send pays a promotion
    fd_log.add(t);
  }
  const auto rep_normal = measure_energy(normal_log, normal, 2100.0);
  const auto rep_fd = measure_energy(fd_log, fd, 2100.0);
  // Fast dormancy slashes tail energy...
  EXPECT_LT(rep_fd.tail_energy(), 0.1 * rep_normal.tail_energy());
  // ...but pays promotion energy and signaling on every transmission.
  EXPECT_EQ(rep_fd.promotions, 20u);
  EXPECT_GT(rep_fd.setup_energy, 0.0);
  EXPECT_EQ(rep_fd.cold_starts, 20u);
}

TEST(EnergyMeter, HorizonBeforeLastEndThrows) {
  TransmissionLog log;
  log.add(tx(0.0, 10.0));
  EXPECT_THROW(measure_energy(log, PowerModel::PaperUmts3G(), 5.0),
               std::invalid_argument);
}

TEST(EnergyMeter, PowerAtTracksStates) {
  const PowerModel m = PowerModel::PaperUmts3G();
  TransmissionLog log;
  log.add(tx(100.0, 2.0));
  EXPECT_DOUBLE_EQ(power_at(log, m, 0.0), m.idle_power);
  EXPECT_DOUBLE_EQ(power_at(log, m, 101.0), m.idle_power + m.tx_extra_power);
  EXPECT_DOUBLE_EQ(power_at(log, m, 105.0), m.idle_power + m.dch_extra_power);
  EXPECT_DOUBLE_EQ(power_at(log, m, 115.0),
                   m.idle_power + m.fach_extra_power);
  EXPECT_DOUBLE_EQ(power_at(log, m, 200.0), m.idle_power);
}

TEST(EnergyMeter, PowerAtDuringSetupIsDch) {
  const PowerModel m = PowerModel::Realistic3G();
  TransmissionLog log;
  Transmission t = tx(10.0, 1.0);
  t.setup = 2.0;
  log.add(t);
  EXPECT_DOUBLE_EQ(power_at(log, m, 11.0), m.idle_power + m.dch_extra_power);
  EXPECT_DOUBLE_EQ(power_at(log, m, 12.5), m.idle_power + m.tx_extra_power);
}

// Property: total energy from the meter is invariant to how a fixed set of
// transmissions is split between kinds, and network energy is monotone in
// the number of transmissions added far apart.
class EnergyMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(EnergyMonotonicity, MoreIsolatedTransmissionsMoreEnergy) {
  const PowerModel m = PowerModel::PaperUmts3G();
  const int n = GetParam();
  TransmissionLog log;
  for (int i = 0; i < n; ++i) {
    log.add(tx(100.0 * i, 1.0));
  }
  const double horizon = 100.0 * n + 100.0;
  const auto report = measure_energy(log, m, horizon);
  // Isolated by 100 s >> 17.5 s tail, so each pays a full tail.
  EXPECT_NEAR(report.tail_energy(), n * m.full_tail_energy(), 1e-9);
  EXPECT_NEAR(report.network_energy(),
              n * (m.full_tail_energy() + m.tx_extra_power * 1.0), 1e-9);
  EXPECT_EQ(report.full_tails, static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Counts, EnergyMonotonicity,
                         ::testing::Values(0, 1, 2, 5, 20, 100));

}  // namespace
}  // namespace etrain::radio
