#include "radio/battery.h"

#include <gtest/gtest.h>

namespace etrain::radio {
namespace {

TEST(Battery, PaperCapacity) {
  // 1700 mAh * 3.7 V * 3600 s/h = 22,644 J.
  const Battery b;
  EXPECT_NEAR(b.capacity_joules(), 22644.0, 1e-6);
}

TEST(Battery, FractionOfCapacity) {
  const Battery b;
  EXPECT_NEAR(b.fraction_of_capacity(2264.4), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(b.fraction_of_capacity(0.0), 0.0);
  EXPECT_THROW(b.fraction_of_capacity(-1.0), std::invalid_argument);
}

TEST(Battery, PaperSection2DArithmetic) {
  // Sec. II-D: 12+ heartbeats per hour at ~10.91 J/tail over a 10-hour
  // battery life should consume "at least 6% of its battery capacity".
  const Battery b;
  const Joules per_hour = 12.0 * 10.91;
  const double fraction = b.fraction_of_capacity(per_hour * 10.0);
  EXPECT_GE(fraction, 0.057);
  EXPECT_LE(fraction, 0.08);
}

TEST(Battery, FractionForPower) {
  const Battery b;
  // 100 mW for 10 hours = 3600 J = ~15.9 % of the pack.
  EXPECT_NEAR(b.fraction_for_power(0.1, hours(10.0)), 3600.0 / 22644.0,
              1e-9);
  EXPECT_THROW(b.fraction_for_power(-0.1, 10.0), std::invalid_argument);
}

TEST(Battery, LifetimeAtConstantDrain) {
  const Battery b;
  EXPECT_NEAR(b.lifetime_at(22644.0 / 3600.0), 3600.0, 1e-6);
  EXPECT_THROW(b.lifetime_at(0.0), std::invalid_argument);
}

TEST(Battery, StandbyEquivalent) {
  // The paper translates ~2000 J into "roughly 10 hours of standby time":
  // implies a standby drain near 55 mW.
  const Battery b;
  EXPECT_NEAR(b.standby_equivalent(2000.0, 0.055), 2000.0 / 0.055, 1e-6);
  EXPECT_NEAR(b.standby_equivalent(2000.0, 0.055) / 3600.0, 10.1, 0.2);
  EXPECT_THROW(b.standby_equivalent(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(b.standby_equivalent(-1.0, 0.1), std::invalid_argument);
}

TEST(Battery, CustomPack) {
  const Battery big(3000.0, 3.85);
  EXPECT_NEAR(big.capacity_joules(), 3.0 * 3.85 * 3600.0, 1e-6);
  EXPECT_THROW(Battery(0.0, 3.7), std::invalid_argument);
  EXPECT_THROW(Battery(1700.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace etrain::radio
