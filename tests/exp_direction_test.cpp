// Tests for the download/prefetch path: Direction::kDownlink cargo rides
// the downlink bandwidth end to end.
#include <gtest/gtest.h>

#include "apps/cargo_app.h"
#include "core/etrain_scheduler.h"
#include "baselines/baseline_policy.h"
#include "exp/slotted_sim.h"
#include "net/radio_link.h"
#include "radio/energy_meter.h"

namespace etrain::experiments {
namespace {

TEST(Direction, DefaultIsUplink) {
  core::Packet p;
  EXPECT_EQ(p.direction, core::Direction::kUplink);
}

TEST(Direction, GeneratorMixesDirectionsPerFraction) {
  auto spec = apps::weibo_spec();
  spec.download_fraction = 0.5;
  Rng rng(5);
  const auto packets = apps::generate_arrivals(spec, 0, 200000.0, rng);
  std::size_t downloads = 0;
  for (const auto& p : packets) {
    if (p.direction == core::Direction::kDownlink) ++downloads;
  }
  const double fraction =
      static_cast<double>(downloads) / static_cast<double>(packets.size());
  EXPECT_NEAR(fraction, 0.5, 0.03);
}

TEST(Direction, ZeroFractionIsAllUplink) {
  Rng rng(6);
  const auto packets =
      apps::generate_arrivals(apps::mail_spec(), 0, 50000.0, rng);
  for (const auto& p : packets) {
    EXPECT_EQ(p.direction, core::Direction::kUplink);
  }
}

TEST(Direction, SlottedSimUsesDownlinkBandwidth) {
  Scenario s;
  s.horizon = 100.0;
  s.model = radio::PowerModel::PaperUmts3G();
  s.trace = net::BandwidthTrace::constant(1000.0, 10);
  s.downlink_trace = net::BandwidthTrace::constant(10000.0, 10);
  s.profiles = {&core::weibo_cost_profile()};

  core::Packet up;
  up.id = 0;
  up.app = 0;
  up.arrival = 10.0;
  up.bytes = 10000;
  up.deadline = 60.0;
  core::Packet down = up;
  down.id = 1;
  down.arrival = 50.0;
  down.direction = core::Direction::kDownlink;
  s.packets = {up, down};

  baselines::BaselinePolicy policy;
  const auto m = run_slotted(s, policy);
  ASSERT_EQ(m.log.count(radio::TxKind::kData), 2u);
  // Uplink: 10000 B at 1000 B/s = 10 s. Downlink: at 10000 B/s = 1 s.
  const auto& entries = m.log.entries();
  EXPECT_NEAR(entries[0].duration, 10.0, 1e-9);
  EXPECT_NEAR(entries[1].duration, 1.0, 1e-9);
}

TEST(Direction, MakeScenarioBuildsTripleRateDownlink) {
  ScenarioConfig cfg;
  cfg.horizon = 600.0;
  const Scenario s = make_scenario(cfg);
  ASSERT_EQ(s.downlink_trace.samples().size(), s.trace.samples().size());
  for (std::size_t i = 0; i < s.trace.samples().size(); ++i) {
    EXPECT_NEAR(s.downlink_trace.samples()[i], 3.0 * s.trace.samples()[i],
                1e-9);
  }
}

TEST(Direction, RadioLinkRoutesDownloads) {
  sim::Simulator simulator;
  const auto model = radio::PowerModel::PaperUmts3G();
  const auto up = net::BandwidthTrace::constant(1000.0, 10);
  const auto down = net::BandwidthTrace::constant(5000.0, 10);
  net::RadioLink link(simulator, model, up, &down);
  simulator.schedule_at(0.0, [&] {
    link.submit({.bytes = 5000, .kind = radio::TxKind::kData,
                 .direction = core::Direction::kDownlink});
    link.submit({.bytes = 5000, .kind = radio::TxKind::kData,
                 .direction = core::Direction::kUplink});
  });
  simulator.run_until(100.0);
  ASSERT_EQ(link.log().size(), 2u);
  EXPECT_NEAR(link.log()[0].duration, 1.0, 1e-9);  // 5000 B at 5000 B/s
  EXPECT_NEAR(link.log()[1].duration, 5.0, 1e-9);  // 5000 B at 1000 B/s
}

TEST(Direction, RadioLinkWithoutDownlinkFallsBackToUplink) {
  sim::Simulator simulator;
  const auto model = radio::PowerModel::PaperUmts3G();
  const auto up = net::BandwidthTrace::constant(1000.0, 10);
  net::RadioLink link(simulator, model, up);
  simulator.schedule_at(0.0, [&] {
    link.submit({.bytes = 2000, .kind = radio::TxKind::kData,
                 .direction = core::Direction::kDownlink});
  });
  simulator.run_until(100.0);
  ASSERT_EQ(link.log().size(), 1u);
  EXPECT_NEAR(link.log()[0].duration, 2.0, 1e-9);
}

TEST(Direction, DownloadsStillPiggybackOnTrains) {
  // Energy semantics are direction-agnostic: a download right after a
  // heartbeat truncates the same tail an upload would.
  Scenario s;
  s.horizon = 700.0;
  s.model = radio::PowerModel::PaperUmts3G();
  s.trace = net::BandwidthTrace::constant(120e3, 10);
  s.downlink_trace = net::BandwidthTrace::constant(360e3, 10);
  s.trains = apps::build_train_schedule({apps::qq_spec()}, s.horizon);
  s.profiles = {&core::mail_cost_profile()};
  core::Packet p;
  p.id = 0;
  p.app = 0;
  p.arrival = 100.0;
  p.bytes = 40000;
  p.deadline = 400.0;
  p.direction = core::Direction::kDownlink;
  s.packets = {p};

  core::EtrainScheduler etrain({.theta = 10.0, .k = 20});
  const auto m = run_slotted(s, etrain);
  ASSERT_EQ(m.outcomes.size(), 1u);
  // Arrival 100, trains at 0/300/600: the download departs with the 300 s
  // train.
  EXPECT_NEAR(m.outcomes[0].sent, 300.0, 1.5);
  // Total tails = one per train (the download's tail merges with its
  // train's).
  EXPECT_NEAR(m.energy.tail_energy(),
              3.0 * s.model.full_tail_energy(), 1.0);
}

}  // namespace
}  // namespace etrain::experiments
