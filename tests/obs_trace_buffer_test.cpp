#include "obs/trace_buffer.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"
#include "obs/trace.h"

namespace etrain::obs {
namespace {

TEST(TraceBuffer, RecordsInOrderBelowCapacity) {
  TraceBuffer buffer(8);
  for (int i = 0; i < 5; ++i) {
    buffer.record(TraceEvent::event_fire(static_cast<double>(i), i));
  }
  EXPECT_EQ(buffer.size(), 5u);
  EXPECT_EQ(buffer.total_recorded(), 5u);
  EXPECT_FALSE(buffer.overflowed());
  EXPECT_EQ(buffer.dropped(), 0u);
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].type, EventType::kEventFire);
    EXPECT_EQ(events[i].b, i);
    EXPECT_DOUBLE_EQ(events[i].time, static_cast<double>(i));
  }
}

TEST(TraceBuffer, WraparoundKeepsTheMostRecentEvents) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 11; ++i) {
    buffer.record(TraceEvent::event_fire(static_cast<double>(i), i));
  }
  EXPECT_EQ(buffer.capacity(), 4u);
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.total_recorded(), 11u);
  EXPECT_TRUE(buffer.overflowed());
  EXPECT_EQ(buffer.dropped(), 7u);
  // The survivors are the last 4 records, oldest first.
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].b, 7 + i);
  }
}

TEST(TraceBuffer, WraparoundLandingExactlyOnCapacity) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 8; ++i) {
    buffer.record(TraceEvent::event_fire(0.0, i));
  }
  // next_ wrapped back to 0: events() must still return all four.
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].b, 4 + i);
  EXPECT_EQ(buffer.dropped(), 4u);
}

TEST(TraceBuffer, ClearResets) {
  TraceBuffer buffer(2);
  buffer.record(TraceEvent::event_fire(1.0, 1));
  buffer.record(TraceEvent::event_fire(2.0, 2));
  buffer.record(TraceEvent::event_fire(3.0, 3));
  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.overflowed());
  EXPECT_TRUE(buffer.events().empty());
  buffer.record(TraceEvent::event_fire(4.0, 4));
  ASSERT_EQ(buffer.events().size(), 1u);
  EXPECT_EQ(buffer.events()[0].b, 4);
}

TEST(TraceBuffer, MinimumCapacityIsOne) {
  TraceBuffer buffer(0);
  EXPECT_EQ(buffer.capacity(), 1u);
  buffer.record(TraceEvent::event_fire(1.0, 1));
  buffer.record(TraceEvent::event_fire(2.0, 2));
  ASSERT_EQ(buffer.events().size(), 1u);
  EXPECT_EQ(buffer.events()[0].b, 2);
}

// The canonical fan-out pattern: one buffer per task, created inside the
// task, so recording stays lock-free and each task's trace is its own.
TEST(TraceBuffer, PerTaskBuffersUnderParallelMap) {
  const std::vector<int> tasks = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto traces = parallel_map(tasks, [](int task) {
    TraceBuffer buffer(128);
    for (int i = 0; i < 10 * (task + 1); ++i) {
      buffer.record(TraceEvent::event_fire(static_cast<double>(i), task));
    }
    return buffer.events();
  });
  ASSERT_EQ(traces.size(), tasks.size());
  for (std::size_t task = 0; task < tasks.size(); ++task) {
    ASSERT_EQ(traces[task].size(), 10u * (task + 1));
    for (const auto& e : traces[task]) {
      EXPECT_EQ(e.b, static_cast<std::int64_t>(task));
    }
  }
}

TEST(TraceMacro, NullSinkSkipsPayloadConstruction) {
  TraceSink* sink = nullptr;
  int evaluations = 0;
  const auto make = [&evaluations] {
    ++evaluations;
    return TraceEvent::event_fire(0.0, 0);
  };
  ETRAIN_TRACE(sink, make());
  EXPECT_EQ(evaluations, 0);
  TraceBuffer buffer(4);
  sink = &buffer;
  ETRAIN_TRACE(sink, make());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(TraceEventFactories, PayloadMapping) {
  const auto gate = TraceEvent::gate_open(12.5, true, 0.8, 0.5);
  EXPECT_EQ(gate.type, EventType::kGateOpen);
  EXPECT_EQ(gate.a, 1);
  EXPECT_DOUBLE_EQ(gate.x, 0.8);
  EXPECT_DOUBLE_EQ(gate.y, 0.5);

  const auto sel = TraceEvent::packet_select(3.0, 2, 41, 1.5, 0.25);
  EXPECT_EQ(sel.type, EventType::kPacketSelect);
  EXPECT_EQ(sel.a, 2);
  EXPECT_EQ(sel.b, 41);
  EXPECT_DOUBLE_EQ(sel.x, 1.5);
  EXPECT_DOUBLE_EQ(sel.y, 0.25);

  const auto tail = TraceEvent::tail_charge(9.0, 1, 2.25, 12.0);
  EXPECT_EQ(tail.type, EventType::kTailCharge);
  EXPECT_EQ(tail.a, 1);
  EXPECT_DOUBLE_EQ(tail.x, 2.25);
  EXPECT_DOUBLE_EQ(tail.y, 12.0);
}

}  // namespace
}  // namespace etrain::obs
