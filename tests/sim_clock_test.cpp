// Clock-seam tests (sim/clock.h): VirtualClock is a faithful adapter of
// the discrete-event Simulator, WallClock fires alarms in the Simulator's
// (deadline, seq) order with a monotone now(), and — the seam's whole
// point — the same timed frame script driven through a ClientSession
// produces the IDENTICAL ScheduledPacket sequence under virtual time and
// under compressed real time (docs/gateway.md, docs/determinism.md).
#include "sim/clock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "gateway/session.h"
#include "sim/simulator.h"
#include "system/protocol.h"

namespace {

using namespace etrain;
using sim::Simulator;
using sim::VirtualClock;
using sim::WallClock;

TEST(VirtualClock, DelegatesToSimulator) {
  Simulator sim;
  VirtualClock clock(sim);
  EXPECT_EQ(clock.now(), 0.0);
  EXPECT_FALSE(clock.next_alarm().has_value());

  std::vector<int> order;
  clock.schedule_at(5.0, [&] { order.push_back(2); });
  const auto early = clock.schedule_at(1.0, [&] { order.push_back(1); });
  const auto cancelled = clock.schedule_at(3.0, [&] { order.push_back(99); });
  ASSERT_TRUE(clock.next_alarm().has_value());
  EXPECT_EQ(*clock.next_alarm(), 1.0);
  EXPECT_TRUE(clock.cancel(cancelled));
  EXPECT_FALSE(clock.cancel(cancelled));

  sim.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(clock.now(), 10.0);
  EXPECT_FALSE(clock.cancel(early));  // already fired
  EXPECT_FALSE(clock.next_alarm().has_value());
}

TEST(WallClock, FiresDueAlarmsInDeadlineSeqOrder) {
  // A large time_scale makes every deadline already due, so run_due()
  // must fire the whole batch in (deadline, seq) order, exactly like a
  // late epoll wakeup that slept through several deadlines.
  WallClock clock(1e9);
  std::vector<int> order;
  clock.schedule_at(2.0, [&] { order.push_back(3); });
  clock.schedule_at(1.0, [&] { order.push_back(1); });
  clock.schedule_at(1.0, [&] { order.push_back(2); });  // FIFO on tie
  while (clock.pending_alarms() > 0) clock.run_due();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.alarms_fired(), 3u);
  // Callbacks observed a clock at/after their deadline, monotonically.
  EXPECT_GE(clock.now(), 2.0);
}

TEST(WallClock, CancelAndNextAlarm) {
  WallClock clock(1.0);
  const auto a = clock.schedule_at(100.0, [] {});
  const auto b = clock.schedule_at(50.0, [] {});
  ASSERT_TRUE(clock.next_alarm().has_value());
  EXPECT_EQ(*clock.next_alarm(), 50.0);
  // Cancelling the earliest alarm must advance next_alarm() immediately —
  // the event loop derives its poll timeout from it.
  EXPECT_TRUE(clock.cancel(b));
  EXPECT_EQ(*clock.next_alarm(), 100.0);
  EXPECT_TRUE(clock.cancel(a));
  EXPECT_FALSE(clock.next_alarm().has_value());
  EXPECT_FALSE(clock.cancel(a));
  EXPECT_EQ(clock.pending_alarms(), 0u);
  // Past deadlines are legal (real time slips); they are simply due now.
  clock.schedule_at(-1.0, [] {});
  EXPECT_EQ(clock.run_due(), 1u);
  EXPECT_THROW(WallClock(0.0), std::invalid_argument);
}

TEST(WallClock, RunUntilSleepsAndScalesTime) {
  // 1000x compression: 5 clock seconds of alarms in ~5 real ms.
  WallClock clock(1000.0);
  std::vector<double> fired_at;
  clock.schedule_at(2.0, [&] { fired_at.push_back(clock.now()); });
  clock.schedule_at(5.0, [&] { fired_at.push_back(clock.now()); });
  clock.run_until(10.0);
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_GE(fired_at[0], 2.0);
  EXPECT_GE(fired_at[1], 5.0);
  EXPECT_GE(clock.now(), fired_at[1]);  // monotone through the run
}

// ---------------------------------------------------------------------------
// The determinism pin: one scripted client, two time sources, identical
// scheduling decisions.
// ---------------------------------------------------------------------------

struct Release {
  std::uint64_t packet_id;
  double transmitted;
  bool piggybacked;
  bool flushed;
  bool operator==(const Release&) const = default;
};

struct ScriptItem {
  double t;
  bool heartbeat;
  system::wire::CargoFrame cargo;  // when !heartbeat
};

/// The timed frame script: heartbeats every 30 s, cargo arriving between
/// them with mixed deadlines — some board the next train, some drip at
/// deadline via quantized ticks, one is still waiting at the final flush.
std::vector<ScriptItem> script() {
  using system::wire::CargoFrame;
  std::vector<ScriptItem> items;
  for (int k = 0; k < 4; ++k) {
    items.push_back({30.0 * (k + 1), true, {}});
  }
  items.push_back({5.0, false, CargoFrame{100, 1, 4096, 60.0}});
  items.push_back({12.5, false, CargoFrame{101, 2, 20000, 8.0}});
  items.push_back({47.0, false, CargoFrame{100, 3, 1500, 100.0}});
  items.push_back({61.25, false, CargoFrame{101, 4, 50000, 3.5}});
  // After the last heartbeat and with a deadline beyond the run's end:
  // no train ever comes for this one, the final flush carries it out.
  items.push_back({125.0, false, CargoFrame{100, 5, 9000, 90.0}});
  std::sort(items.begin(), items.end(),
            [](const ScriptItem& a, const ScriptItem& b) { return a.t < b.t; });
  return items;
}

system::wire::HelloFrame hello() {
  system::wire::HelloFrame h;
  h.client_id = 1;
  h.cargo_apps.push_back({100, system::wire::ProfileCode::kMail});
  h.cargo_apps.push_back({101, system::wire::ProfileCode::kWeibo});
  h.train_apps.push_back(1);
  return h;
}

/// Runs the script against `clock`, delivering each frame at its scripted
/// clock time via an alarm, then flushes at `end`.
std::vector<Release> drive_session(sim::Clock& clock,
                                   const std::function<void(double)>& advance,
                                   double end) {
  std::vector<Release> releases;
  gateway::SessionConfig config;
  gateway::ClientSession session(
      hello(), baselines::builtin_registry(), config, clock,
      [&](const gateway::ScheduledPacket& p) {
        releases.push_back(Release{p.packet_id, p.transmitted, p.piggybacked,
                                   p.flushed});
      });
  for (const ScriptItem& item : script()) {
    clock.schedule_at(item.t, [&session, item] {
      if (item.heartbeat) {
        ASSERT_TRUE(session.on_heartbeat(1, item.t));
      } else {
        ASSERT_TRUE(session.on_cargo(item.cargo, item.t));
      }
    });
  }
  advance(end);
  session.flush(end);
  EXPECT_EQ(session.waiting(), 0u);
  return releases;
}

TEST(ClockSeam, VirtualAndWallRunsAreIdentical) {
  const double end = 130.0;

  Simulator sim;
  VirtualClock virtual_clock(sim);
  const std::vector<Release> virtual_releases = drive_session(
      virtual_clock, [&](double until) { sim.run_until(until); }, end);

  // 2000x compression: the same 130 clock seconds in ~65 real ms.
  WallClock wall_clock(2000.0);
  const std::vector<Release> wall_releases = drive_session(
      wall_clock, [&](double until) { wall_clock.run_until(until); }, end);

  // Not almost equal — byte-for-byte the same decisions: same packets,
  // same transmit times (uplink billing arithmetic on identical inputs),
  // same piggyback/drip/flush classification.
  ASSERT_EQ(virtual_releases.size(), wall_releases.size());
  for (std::size_t i = 0; i < virtual_releases.size(); ++i) {
    EXPECT_EQ(virtual_releases[i], wall_releases[i]) << "release " << i;
  }
  // The script is built so every class of release occurs at least once.
  bool any_piggyback = false, any_flush = false;
  for (const Release& r : virtual_releases) {
    any_piggyback |= r.piggybacked;
    any_flush |= r.flushed;
  }
  EXPECT_TRUE(any_piggyback);
  EXPECT_TRUE(any_flush);
}

}  // namespace
