#include "core/offline_solver.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace etrain::core {
namespace {

QueuedPacket make(PacketId id, TimePoint arrival, Duration deadline,
                  const CostProfile& profile = weibo_cost_profile(),
                  Bytes bytes = 1000) {
  Packet p;
  p.id = id;
  p.app = 0;
  p.arrival = arrival;
  p.deadline = deadline;
  p.bytes = bytes;
  return QueuedPacket{p, &profile};
}

OfflineProblem base_problem() {
  OfflineProblem problem;
  problem.heartbeat_times = {0.0, 300.0, 600.0, 900.0};
  problem.horizon = 1200.0;
  problem.model = radio::PowerModel::PaperUmts3G();
  return problem;
}

TEST(OfflineSolver, CandidateGridContainsArrivalTrainsDeadline) {
  const auto problem = base_problem();
  const auto packet = make(0, 250.0, 400.0);  // window [250, 650]
  const auto candidates = candidate_departures(problem, packet);
  // arrival 250, trains 300 and 600, expiry 650.
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_DOUBLE_EQ(candidates[0], 250.0);
  EXPECT_DOUBLE_EQ(candidates[1], 300.0);
  EXPECT_DOUBLE_EQ(candidates[2], 600.0);
  EXPECT_DOUBLE_EQ(candidates[3], 650.0);
}

TEST(OfflineSolver, EvaluateRejectsCausalityViolations) {
  auto problem = base_problem();
  problem.packets = {make(0, 100.0, 60.0)};
  EXPECT_THROW(evaluate_offline_schedule(problem, {50.0}),
               std::invalid_argument);
  EXPECT_THROW(evaluate_offline_schedule(problem, {}),
               std::invalid_argument);
}

TEST(OfflineSolver, EmptyInstanceIsHeartbeatsOnly) {
  const auto problem = base_problem();
  const auto solution = solve_offline_exact(problem);
  EXPECT_TRUE(solution.optimal);
  // Four isolated heartbeats pay four full tails.
  EXPECT_NEAR(solution.tail_energy,
              4.0 * problem.model.full_tail_energy(), 1e-9);
  EXPECT_DOUBLE_EQ(solution.total_delay_cost, 0.0);
}

TEST(OfflineSolver, SinglePacketRidesTheNextTrain) {
  auto problem = base_problem();
  problem.packets = {make(0, 250.0, 120.0)};  // train at 300 is in window
  const auto solution = solve_offline_exact(problem);
  ASSERT_EQ(solution.departures.size(), 1u);
  EXPECT_DOUBLE_EQ(solution.departures[0], 300.0);
  // Riding the train adds no tail beyond the heartbeats' own.
  EXPECT_NEAR(solution.tail_energy,
              4.0 * problem.model.full_tail_energy(), 1e-6);
}

TEST(OfflineSolver, NoTrainInWindowDepartsAtDeadline) {
  auto problem = base_problem();
  problem.packets = {make(0, 310.0, 60.0)};  // window [310, 370]: no train
  const auto solution = solve_offline_exact(problem);
  // All candidates pay one extra tail; the optimum is any of them. The
  // solver must stay within the window.
  EXPECT_GE(solution.departures[0], 310.0);
  EXPECT_LE(solution.departures[0], 370.0);
  // One extra (possibly truncated) tail beyond the heartbeats'.
  EXPECT_GT(solution.tail_energy, 4.0 * problem.model.full_tail_energy());
}

TEST(OfflineSolver, TwoPacketsAggregateOnOneTrain) {
  auto problem = base_problem();
  problem.packets = {make(0, 220.0, 120.0), make(1, 260.0, 120.0)};
  const auto solution = solve_offline_exact(problem);
  EXPECT_DOUBLE_EQ(solution.departures[0], 300.0);
  EXPECT_DOUBLE_EQ(solution.departures[1], 300.0);
  EXPECT_NEAR(solution.tail_energy,
              4.0 * problem.model.full_tail_energy(), 1e-6);
}

TEST(OfflineSolver, TightBudgetForcesEarlierDepartures) {
  auto problem = base_problem();
  // Weibo profile: waiting until the train at 300 costs (300-250)/120 each.
  problem.packets = {make(0, 250.0, 120.0), make(1, 255.0, 120.0)};
  const auto relaxed = solve_offline_exact(problem);
  EXPECT_DOUBLE_EQ(relaxed.departures[0], 300.0);

  problem.delay_cost_budget = 0.1;  // cannot afford the wait
  const auto tight = solve_offline_exact(problem);
  EXPECT_LE(tight.total_delay_cost, 0.1 + 1e-9);
  EXPECT_LT(tight.departures[0], 300.0);
  // Energy must be no better than the relaxed optimum.
  EXPECT_GE(tight.tail_energy, relaxed.tail_energy - 1e-9);
}

TEST(OfflineSolver, InfeasibleBudgetThrows) {
  auto problem = base_problem();
  // Mail profile is 0 within the deadline, so cost 0 is achievable; use a
  // packet whose cheapest candidate still has positive cost: arrival after
  // every train with the weibo ramp means waiting even 0 s costs 0 — so
  // build infeasibility via a negative budget instead.
  problem.packets = {make(0, 100.0, 60.0)};
  problem.delay_cost_budget = -1.0;
  EXPECT_THROW(solve_offline_exact(problem), std::runtime_error);
}

TEST(OfflineSolver, GreedyMatchesExactOnEasyInstances) {
  auto problem = base_problem();
  problem.packets = {make(0, 100.0, 250.0), make(1, 400.0, 250.0),
                     make(2, 700.0, 250.0)};
  const auto exact = solve_offline_exact(problem);
  const auto greedy = solve_offline_greedy(problem);
  EXPECT_NEAR(greedy.tail_energy, exact.tail_energy, 1e-6);
  EXPECT_FALSE(greedy.optimal);
  EXPECT_TRUE(exact.optimal);
}

TEST(OfflineSolver, GreedyNeverBeatsExact) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    auto problem = base_problem();
    const int n = 1 + trial % 5;
    for (int i = 0; i < n; ++i) {
      problem.packets.push_back(make(i, rng.uniform(0.0, 900.0),
                                     rng.uniform(30.0, 300.0)));
    }
    const auto exact = solve_offline_exact(problem);
    const auto greedy = solve_offline_greedy(problem);
    EXPECT_GE(greedy.tail_energy, exact.tail_energy - 1e-6) << trial;
  }
}

TEST(OfflineSolver, OversizedInstanceRejected) {
  auto problem = base_problem();
  problem.heartbeat_times.clear();
  for (int i = 0; i < 40; ++i) {
    problem.heartbeat_times.push_back(i * 30.0);
  }
  for (int i = 0; i < 20; ++i) {
    problem.packets.push_back(make(i, 0.0, 1200.0));
  }
  EXPECT_THROW(solve_offline_exact(problem, 10'000), std::invalid_argument);
}

TEST(OfflineSolver, ExactReportsSearchEffort) {
  auto problem = base_problem();
  problem.packets = {make(0, 100.0, 300.0), make(1, 200.0, 300.0)};
  const auto solution = solve_offline_exact(problem);
  EXPECT_GT(solution.nodes_explored, 2u);
}

}  // namespace
}  // namespace etrain::core
