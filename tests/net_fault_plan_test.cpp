// FaultPlan: hashed draws, outage lookups, backoff policy, validation and
// the seeded outage-pattern generator.
#include "net/fault_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace etrain::net {
namespace {

TEST(FaultPlanTest, NoneIsInert) {
  const FaultPlan plan = FaultPlan::none();
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.affects_link());
  EXPECT_FALSE(plan.affects_heartbeats());
  for (int entity = 0; entity < 100; ++entity) {
    EXPECT_FALSE(plan.lose_transfer(entity, 1));
    EXPECT_FALSE(plan.drops_heartbeat(entity));
    EXPECT_DOUBLE_EQ(plan.heartbeat_jitter(entity), 0.0);
  }
  EXPECT_FALSE(plan.in_outage(0.0));
  EXPECT_DOUBLE_EQ(plan.outage_end_after(123.0), 123.0);
}

TEST(FaultPlanTest, DrawsArePureFunctionsOfSeedEntityAttempt) {
  FaultPlan a;
  a.seed = 7;
  FaultPlan b;
  b.seed = 7;
  // Equal inputs => equal draws, regardless of call order or interleaving.
  const double first = a.uniform_draw(FaultPlan::kStreamLoss, 42, 3);
  b.uniform_draw(FaultPlan::kStreamLoss, 1, 1);  // unrelated draw between
  EXPECT_DOUBLE_EQ(b.uniform_draw(FaultPlan::kStreamLoss, 42, 3), first);

  // Different seed, entity, attempt or stream each give a different draw.
  FaultPlan c;
  c.seed = 8;
  EXPECT_NE(c.uniform_draw(FaultPlan::kStreamLoss, 42, 3), first);
  EXPECT_NE(a.uniform_draw(FaultPlan::kStreamLoss, 43, 3), first);
  EXPECT_NE(a.uniform_draw(FaultPlan::kStreamLoss, 42, 4), first);
  EXPECT_NE(a.uniform_draw(FaultPlan::kStreamHeartbeatDrop, 42, 3), first);
}

TEST(FaultPlanTest, DrawsAreUniformOnUnitInterval) {
  FaultPlan plan;
  plan.seed = 2015;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = plan.uniform_draw(FaultPlan::kStreamLoss, i, 1);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(FaultPlanTest, LossRateMatchesProbability) {
  FaultPlan plan;
  plan.seed = 3;
  plan.loss_probability = 0.2;
  int lost = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (plan.lose_transfer(i, 1)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2, 0.02);
}

TEST(FaultPlanTest, BackoffGrowsExponentiallyThenCaps) {
  FaultPlan plan;  // base 2, factor 2, cap 60
  EXPECT_DOUBLE_EQ(plan.backoff_delay(1), 2.0);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(2), 4.0);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(3), 8.0);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(5), 32.0);
  EXPECT_DOUBLE_EQ(plan.backoff_delay(6), 60.0);   // 64 capped
  EXPECT_DOUBLE_EQ(plan.backoff_delay(50), 60.0);  // stays at the cap
}

TEST(FaultPlanTest, OutageLookups) {
  FaultPlan plan;
  plan.outages = {{100.0, 200.0}, {500.0, 550.0}};
  EXPECT_FALSE(plan.in_outage(99.9));
  EXPECT_TRUE(plan.in_outage(100.0));
  EXPECT_TRUE(plan.in_outage(199.9));
  EXPECT_FALSE(plan.in_outage(200.0));  // [start, end)
  EXPECT_TRUE(plan.in_outage(520.0));

  EXPECT_DOUBLE_EQ(plan.outage_end_after(150.0), 200.0);
  EXPECT_DOUBLE_EQ(plan.outage_end_after(300.0), 300.0);  // in service
  EXPECT_DOUBLE_EQ(plan.next_outage_start(0.0), 100.0);
  EXPECT_DOUBLE_EQ(plan.next_outage_start(250.0), 500.0);
  EXPECT_EQ(plan.next_outage_start(600.0), kTimeInfinity);
}

TEST(FaultPlanTest, HeartbeatJitterIsZeroMeanGaussian) {
  FaultPlan plan;
  plan.seed = 11;
  plan.heartbeat_jitter_sigma = 10.0;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const Duration j = plan.heartbeat_jitter(i);
    sum += j;
    sum_sq += j * j;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.5);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 10.0, 0.5);
  // Deterministic: the same entity re-draws the same jitter.
  EXPECT_DOUBLE_EQ(plan.heartbeat_jitter(17), plan.heartbeat_jitter(17));
}

TEST(FaultPlanTest, ValidateRejectsMalformedKnobs) {
  FaultPlan plan;
  EXPECT_NO_THROW(plan.validate());

  FaultPlan bad_loss;
  bad_loss.loss_probability = 1.5;
  EXPECT_THROW(bad_loss.validate(), std::invalid_argument);

  FaultPlan bad_drop;
  bad_drop.heartbeat_drop_probability = -0.1;
  EXPECT_THROW(bad_drop.validate(), std::invalid_argument);

  FaultPlan bad_backoff;
  bad_backoff.backoff_base = -1.0;
  EXPECT_THROW(bad_backoff.validate(), std::invalid_argument);

  FaultPlan bad_retries;
  bad_retries.max_retries = -1;
  EXPECT_THROW(bad_retries.validate(), std::invalid_argument);

  FaultPlan unsorted;
  unsorted.outages = {{500.0, 550.0}, {100.0, 200.0}};
  EXPECT_THROW(unsorted.validate(), std::invalid_argument);

  FaultPlan overlapping;
  overlapping.outages = {{100.0, 200.0}, {150.0, 300.0}};
  EXPECT_THROW(overlapping.validate(), std::invalid_argument);

  FaultPlan empty_episode;
  empty_episode.outages = {{200.0, 100.0}};
  EXPECT_THROW(empty_episode.validate(), std::invalid_argument);
}

TEST(FaultPlanTest, GeneratedOutagesApproximateDutyAndValidate) {
  OutagePatternConfig config;
  config.horizon = 100000.0;
  config.duty = 0.25;
  config.episode_mean = 120.0;
  const auto episodes = generate_outages(config, /*seed=*/5);
  ASSERT_FALSE(episodes.empty());

  Duration covered = 0.0;
  TimePoint prev_end = 0.0;
  for (const auto& e : episodes) {
    ASSERT_LT(e.start, e.end);
    ASSERT_GE(e.start, prev_end);  // sorted and disjoint
    prev_end = e.end;
    covered += std::min(e.end, config.horizon) - e.start;
  }
  EXPECT_LE(episodes.front().start, config.horizon);
  EXPECT_NEAR(covered / config.horizon, 0.25, 0.05);

  FaultPlan plan;
  plan.outages = episodes;
  EXPECT_NO_THROW(plan.validate());

  // Seeded: same seed same pattern, different seed different pattern.
  const auto again = generate_outages(config, 5);
  ASSERT_EQ(again.size(), episodes.size());
  EXPECT_DOUBLE_EQ(again.front().start, episodes.front().start);
  const auto other = generate_outages(config, 6);
  EXPECT_NE(other.front().start, episodes.front().start);
}

}  // namespace
}  // namespace etrain::net
