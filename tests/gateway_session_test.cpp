// ClientSession tests (gateway/session.h): the per-connection eTrain
// pipeline must classify every enqueued packet as exactly one of
// piggybacked / dripped / flushed, keep its tick alarms on the quantized
// grid, reject unregistered apps and malformed registrations, and produce
// a transmission log whose append_ledger re-billing reproduces the
// measure_energy meter to 1e-9 J — the invariant report_check enforces on
// whole gateway runs.
#include "gateway/session.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "baselines/registry.h"
#include "obs/report.h"
#include "radio/energy_meter.h"
#include "sim/clock.h"
#include "sim/simulator.h"
#include "system/protocol.h"

namespace {

using namespace etrain;
using gateway::ClientSession;
using gateway::ScheduledPacket;
using gateway::SessionConfig;
using system::wire::CargoFrame;
using system::wire::HelloFrame;
using system::wire::ProfileCode;

HelloFrame mail_hello() {
  HelloFrame h;
  h.client_id = 7;
  h.cargo_apps.push_back({100, ProfileCode::kMail});
  h.train_apps.push_back(1);
  return h;
}

struct Fixture {
  sim::Simulator sim;
  sim::VirtualClock clock{sim};
  SessionConfig config;
  std::vector<ScheduledPacket> releases;
  std::unique_ptr<ClientSession> session;

  explicit Fixture(const HelloFrame& hello = mail_hello(),
                   const SessionConfig& overrides = SessionConfig{}) {
    config = overrides;
    session = std::make_unique<ClientSession>(
        hello, baselines::builtin_registry(), config, clock,
        [this](const ScheduledPacket& p) { releases.push_back(p); });
  }
};

TEST(ClientSession, RejectsInvalidRegistrations) {
  Fixture fx;
  // Empty HELLO: no apps at all.
  EXPECT_THROW(
      ClientSession(HelloFrame{}, baselines::builtin_registry(), fx.config,
                    fx.clock, nullptr),
      std::invalid_argument);
  // Duplicate cargo app ids.
  HelloFrame dup = mail_hello();
  dup.cargo_apps.push_back({100, ProfileCode::kCloud});
  EXPECT_THROW(ClientSession(dup, baselines::builtin_registry(), fx.config,
                             fx.clock, nullptr),
               std::invalid_argument);
  // Unknown policy spec.
  SessionConfig bad = fx.config;
  bad.policy_spec = "no-such-policy";
  EXPECT_THROW(ClientSession(mail_hello(), baselines::builtin_registry(), bad,
                             fx.clock, nullptr),
               std::invalid_argument);
}

TEST(ClientSession, UnregisteredAppsAreProtocolErrors) {
  Fixture fx;
  EXPECT_FALSE(fx.session->on_heartbeat(999, 1.0));
  EXPECT_FALSE(fx.session->on_cargo(CargoFrame{999, 1, 100, 10.0}, 1.0));
  EXPECT_EQ(fx.session->counters().heartbeats, 0u);
  EXPECT_EQ(fx.session->counters().enqueued, 0u);
  EXPECT_TRUE(fx.session->log().empty());
}

TEST(ClientSession, PiggybackDripFlushPartitionIsExact) {
  Fixture fx;
  // Piggyback: cargo waits, then a heartbeat arrives — it boards.
  ASSERT_TRUE(fx.session->on_cargo(CargoFrame{100, 1, 4096, 120.0}, 2.0));
  ASSERT_TRUE(fx.session->on_heartbeat(1, 10.0));
  // Drip: a Mail packet past its deadline has positive speculative cost,
  // so the next quantized tick releases it without any train.
  ASSERT_TRUE(fx.session->on_cargo(CargoFrame{100, 2, 2048, 2.0}, 20.5));
  fx.sim.run_until(60.0);
  // Flush: still waiting at shutdown.
  ASSERT_TRUE(fx.session->on_cargo(CargoFrame{100, 3, 1024, 300.0}, 70.0));
  fx.session->flush(75.0);

  const gateway::SessionCounters& c = fx.session->counters();
  EXPECT_EQ(c.heartbeats, 1u);
  EXPECT_EQ(c.enqueued, 3u);
  EXPECT_EQ(c.piggybacked, 1u);
  EXPECT_EQ(c.dripped, 1u);
  EXPECT_EQ(c.flushed, 1u);
  EXPECT_EQ(c.enqueued, c.piggybacked + c.dripped + c.flushed);
  EXPECT_EQ(fx.session->waiting(), 0u);
  // Transmissions: one per heartbeat plus one per enqueued packet.
  EXPECT_EQ(fx.session->log().size(), c.heartbeats + c.enqueued);

  ASSERT_EQ(fx.releases.size(), 3u);
  EXPECT_TRUE(fx.releases[0].piggybacked);
  EXPECT_EQ(fx.releases[0].packet_id, 1u);
  // Boards right behind the heartbeat's uplink occupancy: latency is the
  // 8 s wait plus the heartbeat's own serialization time.
  EXPECT_NEAR(fx.releases[0].latency(),
              8.0 + 150.0 / fx.config.bandwidth, 1e-12);
  EXPECT_FALSE(fx.releases[1].piggybacked);
  EXPECT_FALSE(fx.releases[1].flushed);  // dripped
  EXPECT_EQ(fx.releases[1].packet_id, 2u);
  EXPECT_TRUE(fx.releases[2].flushed);
  EXPECT_EQ(fx.releases[2].packet_id, 3u);

  // Flush is idempotent: nothing new on a second call.
  fx.session->flush(80.0);
  EXPECT_EQ(fx.releases.size(), 3u);
  EXPECT_EQ(fx.session->counters().flushed, 1u);
}

TEST(ClientSession, TickAlarmsLandOnTheQuantizedGrid) {
  Fixture fx;
  // Cargo at t=2.3 with a far deadline: nothing releases, but a tick must
  // be armed at the next grid point — ceil(2.3 / 1.0) = 3.0 exactly.
  ASSERT_TRUE(fx.session->on_cargo(CargoFrame{100, 1, 4096, 500.0}, 2.3));
  ASSERT_TRUE(fx.clock.next_alarm().has_value());
  EXPECT_DOUBLE_EQ(*fx.clock.next_alarm(), 3.0);
  // An evaluation exactly ON a grid point arms the NEXT point, never
  // itself (no zero-delay spin).
  fx.sim.run_until(3.0);
  ASSERT_TRUE(fx.clock.next_alarm().has_value());
  EXPECT_DOUBLE_EQ(*fx.clock.next_alarm(), 4.0);
  // Releasing the queue (here: flush) disarms the tick.
  fx.session->flush(5.0);
  EXPECT_FALSE(fx.clock.next_alarm().has_value());
}

TEST(ClientSession, LedgerRebillsTheMeterExactly) {
  Fixture fx;
  // A busy little life: heartbeats, boarding cargo, drips, a final flush.
  double t = 0.0;
  std::uint64_t id = 1;
  for (int round = 0; round < 5; ++round) {
    t += 7.5;
    ASSERT_TRUE(
        fx.session->on_cargo(CargoFrame{100, id++, 4096 * (round + 1),
                                        round % 2 == 0 ? 4.0 : 200.0},
                             t));
    t += 22.5;
    ASSERT_TRUE(fx.session->on_heartbeat(1, t));
  }
  fx.sim.run_until(t + 10.0);
  fx.session->flush(t + 10.0);

  const Duration horizon = fx.session->energy_horizon(t + 10.0);
  const Joules meter =
      radio::measure_energy(fx.session->log(), fx.config.model, horizon)
          .network_energy();
  obs::EnergyLedger ledger;
  obs::append_ledger(ledger, "cellular", fx.session->log(), fx.config.model,
                     horizon);
  EXPECT_NEAR(ledger.total(), meter, 1e-9);
  EXPECT_GT(meter, 0.0);
  // The ledger splits heartbeat vs data rows; both kinds must be present.
  EXPECT_GT(ledger.kind_total(radio::TxKind::kHeartbeat), 0.0);
  EXPECT_GT(ledger.kind_total(radio::TxKind::kData), 0.0);
}

TEST(ClientSession, UplinkSerializesAndDerivesPromotions) {
  // Realistic3G has nonzero promotion latencies, so the gap rules show.
  SessionConfig with_promotions;
  with_promotions.model = radio::PowerModel::Realistic3G();
  Fixture fx(mail_hello(), with_promotions);
  // Two back-to-back heartbeats: the second starts after the first ends
  // (serialized) and, with a gap shorter than the DCH tail, pays no
  // promotion setup.
  ASSERT_TRUE(fx.session->on_heartbeat(1, 1.0));
  ASSERT_TRUE(fx.session->on_heartbeat(1, 1.001));
  const radio::TransmissionLog& log = fx.session->log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_GT(log[0].setup, 0.0);  // cold start: IDLE -> DCH promotion
  EXPECT_GE(log[1].start, log[0].end());
  EXPECT_EQ(log[1].setup, 0.0);  // still in DCH
}

}  // namespace
