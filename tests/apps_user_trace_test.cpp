#include "apps/user_trace.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace etrain::apps {
namespace {

TEST(UserTrace, BehaviorStringRoundTrip) {
  for (const auto b : {BehaviorType::kUpload, BehaviorType::kRefresh,
                       BehaviorType::kBrowse}) {
    EXPECT_EQ(behavior_from_string(to_string(b)), b);
  }
  EXPECT_THROW(behavior_from_string("teleport"), std::invalid_argument);
}

TEST(UserTrace, ClassificationThresholds) {
  // Paper: active > 20 uploads per app use, moderate 10..20, inactive < 10.
  const auto with_uploads = [](int n) {
    UserTrace t;
    for (int i = 0; i < n; ++i) {
      t.events.push_back(
          UserEvent{0, BehaviorType::kUpload, i * 1.0, 1000});
    }
    return t;
  };
  EXPECT_EQ(with_uploads(25).classify(), Activeness::kActive);
  EXPECT_EQ(with_uploads(21).classify(), Activeness::kActive);
  EXPECT_EQ(with_uploads(20).classify(), Activeness::kModerate);
  EXPECT_EQ(with_uploads(10).classify(), Activeness::kModerate);
  EXPECT_EQ(with_uploads(9).classify(), Activeness::kInactive);
  EXPECT_EQ(with_uploads(0).classify(), Activeness::kInactive);
}

TEST(UserTrace, UploadCountIgnoresInteractiveEvents) {
  UserTrace t;
  t.events.push_back(UserEvent{0, BehaviorType::kUpload, 0.0, 100});
  t.events.push_back(UserEvent{0, BehaviorType::kRefresh, 1.0, 100});
  t.events.push_back(UserEvent{0, BehaviorType::kBrowse, 2.0, 100});
  EXPECT_EQ(t.upload_count(), 1u);
}

TEST(UserTrace, TruncateAtTenMinutes) {
  UserTrace t;
  t.events.push_back(UserEvent{0, BehaviorType::kUpload, 100.0, 100});
  t.events.push_back(UserEvent{0, BehaviorType::kUpload, 700.0, 100});
  t.truncate();
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_DOUBLE_EQ(t.events[0].time, 100.0);
}

TEST(SynthesizeTrace, MatchesRequestedClass) {
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(synthesize_trace(Activeness::kActive, i, rng).classify(),
              Activeness::kActive);
    EXPECT_EQ(synthesize_trace(Activeness::kModerate, i, rng).classify(),
              Activeness::kModerate);
    EXPECT_EQ(synthesize_trace(Activeness::kInactive, i, rng).classify(),
              Activeness::kInactive);
  }
}

TEST(SynthesizeTrace, SessionLengthFiveToTenMinutes) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const auto t = synthesize_trace(Activeness::kActive, i, rng);
    EXPECT_GT(t.length(), 0.0);
    EXPECT_LE(t.length(), 600.0 + 1.0);
  }
}

TEST(SynthesizeTrace, EventsSortedAndMixed) {
  Rng rng(3);
  const auto t = synthesize_trace(Activeness::kActive, 7, rng);
  bool has_interactive = false;
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(t.events[i].time, t.events[i - 1].time);
    }
    EXPECT_EQ(t.events[i].user_id, 7);
    EXPECT_GT(t.events[i].bytes, 0);
    if (t.events[i].behavior != BehaviorType::kUpload) has_interactive = true;
  }
  EXPECT_TRUE(has_interactive);
}

TEST(SynthesizePopulation, ThreeClassesTimesCount) {
  Rng rng(4);
  const auto traces = synthesize_population(5, rng);
  ASSERT_EQ(traces.size(), 15u);
  int counts[3] = {0, 0, 0};
  for (const auto& t : traces) {
    counts[static_cast<int>(t.classify())]++;
  }
  EXPECT_EQ(counts[static_cast<int>(Activeness::kActive)], 5);
  EXPECT_EQ(counts[static_cast<int>(Activeness::kModerate)], 5);
  EXPECT_EQ(counts[static_cast<int>(Activeness::kInactive)], 5);
  // Distinct user ids.
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_NE(traces[i].user_id, traces[0].user_id);
  }
}

TEST(UserTrace, CsvRoundTrip) {
  Rng rng(5);
  const auto original = synthesize_population(2, rng);
  const auto dir = std::filesystem::temp_directory_path() / "etrain_traces";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "traces.csv").string();
  save_traces_csv(original, path);
  const auto loaded = load_traces_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  std::size_t orig_events = 0, loaded_events = 0;
  for (const auto& t : original) orig_events += t.events.size();
  for (const auto& t : loaded) loaded_events += t.events.size();
  EXPECT_EQ(orig_events, loaded_events);
  for (const auto& t : loaded) {
    for (std::size_t i = 1; i < t.events.size(); ++i) {
      EXPECT_GE(t.events[i].time, t.events[i - 1].time);
    }
  }
}

TEST(ReplayUploads, ConvertsOnlyUploadsWithOffset) {
  UserTrace t;
  t.user_id = 3;
  t.events.push_back(UserEvent{3, BehaviorType::kUpload, 10.0, 2000});
  t.events.push_back(UserEvent{3, BehaviorType::kRefresh, 20.0, 9999});
  t.events.push_back(UserEvent{3, BehaviorType::kUpload, 30.0, 4000});
  const auto packets = replay_uploads(t, 1, 1000.0, 30.0, 77);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].id, 77);
  EXPECT_EQ(packets[1].id, 78);
  EXPECT_DOUBLE_EQ(packets[0].arrival, 1010.0);
  EXPECT_DOUBLE_EQ(packets[1].arrival, 1030.0);
  EXPECT_EQ(packets[0].bytes, 2000);
  EXPECT_EQ(packets[0].app, 1);
  EXPECT_DOUBLE_EQ(packets[0].deadline, 30.0);
}

}  // namespace
}  // namespace etrain::apps
