// Weibo user-trace replay: record/replay of real user behaviour, the
// pipeline behind the paper's Fig. 11.
//
// The example synthesizes a small user population (the stand-in for the
// 100+ Luna Weibo users), persists the traces to CSV exactly in the
// paper's 4-tuple format, loads them back, and replays one user of each
// activeness class with and without eTrain.
#include <cstdio>
#include <filesystem>

#include "apps/user_trace.h"
#include "baselines/baseline_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"

namespace {

using namespace etrain;

// Lays every trace of one class back-to-back (10-minute sessions separated
// by a minute of idle), the same aggregation the paper's Fig. 11 uses.
experiments::Scenario replay_scenario(
    const std::vector<const apps::UserTrace*>& traces) {
  experiments::Scenario s;
  const Duration session = 600.0, gap = 60.0;
  s.horizon = static_cast<double>(traces.size()) * (session + gap);
  s.model = radio::PowerModel::PaperUmts3G();
  s.trace = net::wuhan_trace();
  s.trains = apps::build_train_schedule(apps::default_train_specs(),
                                        s.horizon);
  s.profiles = {&core::weibo_cost_profile()};
  core::PacketId next_id = 0;
  for (std::size_t u = 0; u < traces.size(); ++u) {
    const TimePoint start = static_cast<double>(u) * (session + gap);
    // Uploads become schedulable cargo (30 s Weibo deadline, per the
    // paper); interactive refreshes/browses replay verbatim.
    auto packets = apps::replay_uploads(*traces[u], 0, start, 30.0, next_id);
    next_id += static_cast<core::PacketId>(packets.size());
    s.packets.insert(s.packets.end(), packets.begin(), packets.end());
    for (const auto& e : traces[u]->events) {
      if (e.behavior == apps::BehaviorType::kUpload) continue;
      s.background.push_back(apps::TrainEvent{start + e.time, 0, e.bytes});
    }
  }
  return s;
}

}  // namespace

int main() {
  using namespace etrain;
  std::printf("eTrain example: Luna Weibo trace record & replay\n");

  // 1. "Collect" traces and store them on the server (a CSV here).
  Rng rng(100);
  const auto population = apps::synthesize_population(/*count_per_class=*/3,
                                                      rng);
  const auto dir = std::filesystem::temp_directory_path() / "etrain_example";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "luna_traces.csv").string();
  apps::save_traces_csv(population, path);
  std::printf("recorded %zu user traces to %s\n", population.size(),
              path.c_str());

  // 2. Load them back, cap each session at 10 minutes, group by class.
  auto loaded = apps::load_traces_csv(path);
  for (auto& trace : loaded) trace.truncate();
  Table table({"class", "users", "uploads", "without eTrain_J",
               "with eTrain_J", "saved"});
  for (const auto klass :
       {apps::Activeness::kActive, apps::Activeness::kModerate,
        apps::Activeness::kInactive}) {
    std::vector<const apps::UserTrace*> group;
    std::size_t uploads = 0;
    for (const auto& trace : loaded) {
      if (trace.classify() != klass) continue;
      group.push_back(&trace);
      uploads += trace.upload_count();
    }
    const auto scenario = replay_scenario(group);
    baselines::BaselinePolicy baseline;
    core::EtrainScheduler etrain({.theta = 0.2, .k = 20});
    const auto mb = experiments::run_slotted(scenario, baseline);
    const auto me = experiments::run_slotted(scenario, etrain);
    table.add_row({to_string(klass),
                   Table::integer(static_cast<long long>(group.size())),
                   Table::integer(static_cast<long long>(uploads)),
                   Table::num(mb.network_energy(), 1),
                   Table::num(me.network_energy(), 1),
                   format_joules(mb.network_energy() - me.network_energy())});
  }
  table.print();
  std::printf(
      "active users upload more, giving eTrain more cargo to batch onto "
      "heartbeats — exactly the Fig. 11 effect.\n");
  return 0;
}
