// Cloud-sync scenario: bulk delay-tolerant uploads over a fluctuating
// cellular link, comparing every scheduling policy in the library on the
// identical workload — a small, self-contained version of the paper's
// comparative analysis.
//
// Cloud backup chunks are large (100 KB mean), so transmission time — and
// therefore the time-varying bandwidth — matters more than for chat-sized
// cargo. The example shows how channel-aware policies (PerES/eTime) and
// the channel-oblivious eTrain behave on the same trace.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/cargo_app.h"
#include "baselines/baseline_policy.h"
#include "baselines/etime_policy.h"
#include "baselines/oracle_policy.h"
#include "baselines/peres_policy.h"
#include "baselines/tailender_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"

int main() {
  using namespace etrain;
  std::printf("eTrain example: cloud sync over a fluctuating 3G uplink\n");

  experiments::Scenario s;
  s.horizon = hours(2.0);
  s.model = radio::PowerModel::PaperUmts3G();
  s.trace = net::wuhan_trace();
  s.trains = apps::build_train_schedule(apps::default_train_specs(),
                                        s.horizon);
  auto spec = apps::cloud_spec();
  spec.mean_interarrival = 60.0;  // a busy backup session
  Rng rng(99);
  s.packets = apps::generate_arrivals(spec, 0, s.horizon, rng);
  s.profiles = {spec.profile};
  Bytes total = 0;
  for (const auto& p : s.packets) total += p.bytes;
  std::printf("workload: %zu chunks, %.1f MB total; uplink %.0f..%.0f KB/s "
              "(mean %.0f)\n",
              s.packets.size(), static_cast<double>(total) / 1e6,
              s.trace.min() / 1e3, s.trace.max() / 1e3, s.trace.mean() / 1e3);

  std::vector<std::unique_ptr<core::SchedulingPolicy>> policies;
  policies.push_back(std::make_unique<baselines::BaselinePolicy>());
  policies.push_back(std::make_unique<core::EtrainScheduler>(
      core::EtrainConfig{.theta = 0.5, .k = 20}));
  policies.push_back(std::make_unique<baselines::PerESPolicy>(
      baselines::PerESConfig{.omega = 0.5}));
  policies.push_back(std::make_unique<baselines::ETimePolicy>(
      baselines::ETimeConfig{.v = 1.0}));
  policies.push_back(std::make_unique<baselines::TailEnderPolicy>());
  policies.push_back(std::make_unique<baselines::OraclePolicy>());

  Table table({"policy", "energy_J", "tx_J", "tail_J", "delay_s",
               "violations"});
  for (const auto& policy : policies) {
    const auto m = experiments::run_slotted(s, *policy);
    table.add_row({m.policy_name, Table::num(m.network_energy(), 1),
                   Table::num(m.energy.tx_energy, 1),
                   Table::num(m.energy.tail_energy(), 1),
                   Table::num(m.normalized_delay, 1),
                   Table::num(100.0 * m.violation_ratio, 1) + " %"});
  }
  table.print();
  std::printf(
      "with 100 KB chunks the tx column finally matters, yet the tail "
      "column still dominates — which is why riding heartbeat tails beats "
      "timing the channel.\n");
  return 0;
}
