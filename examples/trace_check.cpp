// Validates Chrome-trace JSON files produced by the --trace bench flag:
// well-formed JSON, required trace_event fields, non-decreasing timestamps,
// and (when a RunSummary is present) that the TailCharge events re-sum to
// the reported tail energy within 1e-9 J. scripts/check.sh runs this over
// the traced fig10 smoke run; it is also registered as a ctest.
//
//   trace_check <trace.json> [more.json ...]    exit 0 iff all pass
#include <cstdio>

#include "obs/trace_check.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: trace_check <trace.json> [more.json ...]\n");
    std::printf(
        "validates Chrome trace_event JSON written by the bench --trace "
        "flag\n");
    return 0;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const auto result = etrain::obs::check_chrome_trace_file(argv[i]);
    if (result.ok) {
      std::printf("%s: OK — %zu events, %zu tail charges (%.6f J%s)\n",
                  argv[i], result.events, result.tail_charges,
                  result.tail_charge_sum,
                  result.reported_tail.has_value() ? ", matches summary"
                                                   : "");
    } else {
      std::printf("%s: FAIL — %s\n", argv[i], result.error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
