// etrain_gatewayd: the live gateway daemon (docs/gateway.md).
//
// Serves the wire protocol of system/protocol.h on a loopback TCP port:
// clients HELLO their app registrations, stream HEARTBEAT and CARGO
// frames, and receive an ACK for every packet when the per-client eTrain
// scheduler releases it (piggybacked on an observed heartbeat when the
// policy finds a train to board).
//
// SIGINT/SIGTERM (or an orderly BYE from every client) shuts the daemon
// down gracefully: waiting queues are flushed through the modeled uplink,
// every session's radio bill is folded into the energy ledger, and — with
// --report — a RunReport manifest is written that examples/report_check
// validates (the `gateway` section's partitions and the ledger re-billing
// of the client energy meter).
//
// Usage:
//   etrain_gatewayd [--port N] [--policy SPEC] [--radio SPEC]
//                   [--time-scale S] [--tick-period S] [--report out.json]
//
//   --port N         TCP port to bind on loopback (default 0 = ephemeral;
//                    the bound port is printed either way)
//   --policy SPEC    PolicyRegistry spec for every session (default
//                    "etrain"; see etrain_cli --list for specs)
//   --radio SPEC     ModelRegistry spec billing every session's uplink
//                    (default "3g:sim"; e.g. lte_cdrx:inactivity=5 — see
//                    etrain_cli --list-radios)
//   --time-scale S   clock seconds per real second (default 1.0 = live)
//   --tick-period S  scheduler evaluation quantum, clock s (default 1.0)
//   --report PATH    write the shutdown RunReport manifest here
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "baselines/registry.h"
#include "gateway/gateway.h"

namespace {

const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  etrain::gateway::GatewayConfig config;
  config.bench_name = "gatewayd";
  if (const char* v = flag_value(argc, argv, "--port")) {
    config.port = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--policy")) {
    config.session.policy_spec = v;
  }
  if (const char* v = flag_value(argc, argv, "--radio")) {
    try {
      config.session.set_radio(v);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "etrain_gatewayd: %s\n", e.what());
      return 2;
    }
  }
  if (const char* v = flag_value(argc, argv, "--time-scale")) {
    config.time_scale = std::strtod(v, nullptr);
  }
  if (const char* v = flag_value(argc, argv, "--tick-period")) {
    config.session.tick_period = std::strtod(v, nullptr);
  }
  if (const char* v = flag_value(argc, argv, "--report")) {
    config.report_path = v;
  }

  try {
    const auto& registry = etrain::baselines::builtin_registry();
    etrain::gateway::Gateway gw(registry, config);
    const int port = gw.open();
    gw.install_signal_handlers();
    std::printf(
        "etrain_gatewayd: listening on 127.0.0.1:%d (policy %s, "
        "time-scale %.1f) — SIGINT/SIGTERM for graceful shutdown\n",
        port, config.session.policy_spec.c_str(), config.time_scale);
    gw.run();
    const auto& stats = gw.stats();
    std::printf(
        "etrain_gatewayd: served %llu clients (%llu heartbeats, %llu "
        "packets, %.3f J); shut down cleanly\n",
        static_cast<unsigned long long>(stats.clients_accepted),
        static_cast<unsigned long long>(stats.heartbeats),
        static_cast<unsigned long long>(stats.packets_enqueued),
        stats.meter_total_J);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "etrain_gatewayd: %s\n", e.what());
    return 1;
  }
  return 0;
}
