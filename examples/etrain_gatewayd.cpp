// etrain_gatewayd: the live gateway daemon (docs/gateway.md).
//
// Serves the wire protocol of system/protocol.h on a loopback TCP port:
// clients HELLO their app registrations, stream HEARTBEAT and CARGO
// frames, and receive an ACK for every packet when the per-client eTrain
// scheduler releases it (piggybacked on an observed heartbeat when the
// policy finds a train to board).
//
// With --stats-port the daemon also serves the live telemetry plane
// (docs/live_telemetry.md) from the same epoll loop: GET /metrics
// (Prometheus text), /healthz (tick-lag watchdog) and /sessions (top-N
// JSON). SIGUSR1 dumps the always-on flight recorder to --flight as a
// Chrome trace_event file.
//
// SIGINT/SIGTERM (or an orderly BYE from every client) shuts the daemon
// down gracefully: waiting queues are flushed through the modeled uplink,
// every session's radio bill is folded into the energy ledger, and — with
// --report — a RunReport manifest is written that examples/report_check
// validates (the `gateway` section's partitions and the ledger re-billing
// of the client energy meter).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "baselines/registry.h"
#include "gateway/gateway.h"
#include "obs/report.h"

namespace {

const char* kUsage =
    "Usage:\n"
    "  etrain_gatewayd [--port N] [--shards N] [--policy SPEC]\n"
    "                  [--radio SPEC] [--time-scale S] [--tick-period S]\n"
    "                  [--report PATH] [--stats-port N] [--watchdog-ms MS]\n"
    "                  [--flight PATH]\n"
    "\n"
    "  --port N         TCP port to bind on loopback (default 0 =\n"
    "                   ephemeral; the bound port is printed either way)\n"
    "  --shards N       worker shards, each its own epoll loop and session\n"
    "                   map (default 1; connections land per shard via\n"
    "                   SO_REUSEPORT, or accept-and-hand-off without it)\n"
    "  --policy SPEC    PolicyRegistry spec for every session (default\n"
    "                   \"etrain\"; see etrain_cli --list for specs)\n"
    "  --radio SPEC     ModelRegistry spec billing every session's uplink\n"
    "                   (default \"3g:sim\"; e.g. lte_cdrx:inactivity=5 —\n"
    "                   see etrain_cli --list-radios)\n"
    "  --time-scale S   clock seconds per real second (default 1.0 = live)\n"
    "  --tick-period S  scheduler evaluation quantum, clock s (default 1.0)\n"
    "  --report PATH    write the shutdown RunReport manifest here\n"
    "  --stats-port N   serve /metrics, /healthz and /sessions on loopback\n"
    "                   port N (0 = ephemeral; omitted = stats disabled).\n"
    "                   A failed bind is fatal — the daemon exits instead\n"
    "                   of running without its stats plane\n"
    "  --watchdog-ms MS tick-lag budget in real milliseconds before\n"
    "                   /healthz turns 503 and the flight recorder dumps\n"
    "                   (default 5000)\n"
    "  --flight PATH    flight-recorder dump path, Chrome trace_event JSON\n"
    "                   (default gateway.flight.json; also on SIGUSR1)\n"
    "  --help           this text\n";

const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  etrain::gateway::GatewayConfig config;
  config.bench_name = "gatewayd";
  if (const char* v = flag_value(argc, argv, "--port")) {
    config.port = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--shards")) {
    config.shards = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--policy")) {
    config.session.policy_spec = v;
  }
  if (const char* v = flag_value(argc, argv, "--radio")) {
    try {
      config.session.set_radio(v);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "etrain_gatewayd: %s\n", e.what());
      return 2;
    }
  }
  if (const char* v = flag_value(argc, argv, "--time-scale")) {
    config.time_scale = std::strtod(v, nullptr);
  }
  if (const char* v = flag_value(argc, argv, "--tick-period")) {
    config.session.tick_period = std::strtod(v, nullptr);
  }
  if (const char* v = flag_value(argc, argv, "--report")) {
    config.report_path = v;
  }
  if (const char* v = flag_value(argc, argv, "--stats-port")) {
    config.stats_port = std::atoi(v);
  }
  if (const char* v = flag_value(argc, argv, "--watchdog-ms")) {
    config.watchdog_budget_s = std::strtod(v, nullptr) / 1000.0;
  }
  if (const char* v = flag_value(argc, argv, "--flight")) {
    config.flight_path = v;
  }

  // Build provenance up front, so logs always say what binary this was.
  const etrain::obs::BuildInfo build = etrain::obs::current_build_info();
  std::printf(
      "etrain_gatewayd: build %s c++%ld obs=%s assertions=%s sanitizer=%s\n",
      build.compiler.c_str(), build.cxx_standard,
      build.obs_enabled ? "on" : "off", build.assertions ? "on" : "off",
      build.sanitizer.empty() ? "none" : build.sanitizer.c_str());

  try {
    const auto& registry = etrain::baselines::builtin_registry();
    etrain::gateway::Gateway gw(registry, config);
    const int port = gw.open();  // a stats bind failure throws out loudly
    gw.install_signal_handlers();
    std::printf(
        "etrain_gatewayd: listening on 127.0.0.1:%d (policy %s, "
        "time-scale %.1f, %d shard%s%s) — SIGINT/SIGTERM for graceful "
        "shutdown\n",
        port, config.session.policy_spec.c_str(), config.time_scale,
        gw.shard_count(), gw.shard_count() == 1 ? "" : "s",
        gw.handoff_mode() ? ", hand-off accept" : "");
    if (gw.stats_port() >= 0) {
      std::printf(
          "etrain_gatewayd: stats on 127.0.0.1:%d — /metrics /healthz "
          "/sessions (watchdog %.0f ms, SIGUSR1 dumps %s)\n",
          gw.stats_port(), config.watchdog_budget_s * 1000.0,
          config.flight_path.c_str());
    }
    std::fflush(stdout);  // readiness lines must reach pipes before run()
    gw.run();
    const auto& stats = gw.stats();
    std::printf(
        "etrain_gatewayd: served %llu clients (%llu heartbeats, %llu "
        "packets, %.3f J); shut down cleanly\n",
        static_cast<unsigned long long>(stats.clients_accepted),
        static_cast<unsigned long long>(stats.heartbeats),
        static_cast<unsigned long long>(stats.packets_enqueued),
        stats.meter_total_J);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "etrain_gatewayd: %s\n", e.what());
    return 1;
  }
  return 0;
}
