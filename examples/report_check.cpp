// Validates RunReport JSON files produced by the --report bench flag:
// schema and structure, ledger/energy self-consistency to 1e-9 J, and —
// with the optional flags — cross-validation against the Chrome trace of
// the same run and against the CSV artifacts the report lists.
// scripts/check.sh runs this over every BENCH_*.json the quick bench suite
// emits; the same checks back obs_report_test.
//
//   report_check <report.json> [more.json ...]
//       [--trace <trace.json>]   compare against the trace's RunSummary
//       [--csv-dir <dir>]        resolve artifact paths against <dir>
//       [--artifacts]            re-read and re-sum the CSV artifacts
//
// Exit 0 iff every report (and every requested cross-check) passes.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/report_check.h"
#include "obs/trace_check.h"

int main(int argc, char** argv) {
  std::vector<std::string> reports;
  std::string trace_path;
  std::string csv_dir;
  bool check_artifacts = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::printf("--trace requires a value\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (arg == "--csv-dir") {
      if (i + 1 >= argc) {
        std::printf("--csv-dir requires a value\n");
        return 2;
      }
      csv_dir = argv[++i];
      check_artifacts = true;
    } else if (arg == "--artifacts") {
      check_artifacts = true;
    } else {
      reports.push_back(arg);
    }
  }
  if (reports.empty()) {
    std::printf(
        "usage: report_check <report.json> [more.json ...] "
        "[--trace <trace.json>] [--csv-dir <dir>] [--artifacts]\n");
    std::printf(
        "validates run-report JSON written by the bench --report flag\n");
    return 0;
  }

  int failures = 0;
  for (const std::string& path : reports) {
    const auto result = etrain::obs::check_run_report_file(path);
    if (!result.ok) {
      std::printf("%s: FAIL — %s\n", path.c_str(), result.error.c_str());
      ++failures;
      continue;
    }
    std::printf(
        "%s: OK — bench '%s', %zu provenance entries, %zu results, "
        "%zu ledger rows, %zu artifacts%s%s\n",
        path.c_str(), result.bench.c_str(), result.provenance_entries,
        result.results, result.ledger_rows, result.artifacts.size(),
        result.metrics_present ? ", metrics" : "",
        result.profile_present ? ", profile" : "");

    if (!trace_path.empty()) {
      const auto trace = etrain::obs::check_chrome_trace_file(trace_path);
      const std::string mismatch =
          etrain::obs::cross_check_trace(result, trace);
      if (mismatch.empty()) {
        std::printf("%s: trace cross-check OK against %s\n", path.c_str(),
                    trace_path.c_str());
      } else {
        std::printf("%s: trace cross-check FAIL — %s\n", path.c_str(),
                    mismatch.c_str());
        ++failures;
      }
    }

    if (check_artifacts) {
      const std::string mismatch =
          etrain::obs::cross_check_artifacts(result, csv_dir);
      if (mismatch.empty()) {
        std::printf("%s: %zu artifact(s) cross-check OK\n", path.c_str(),
                    result.artifacts.size());
      } else {
        std::printf("%s: artifact cross-check FAIL — %s\n", path.c_str(),
                    mismatch.c_str());
        ++failures;
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
