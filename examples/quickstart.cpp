// Quickstart: assemble the full eTrain system on the simulated device and
// watch it piggyback e-mail onto IM heartbeats.
//
//   1. create the device (radio model + bandwidth trace);
//   2. install three train apps (QQ / WeChat / WhatsApp daemons);
//   3. register one cargo app (Mail) with a Poisson workload;
//   4. run 2 simulated hours and read the energy/delay report.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "apps/cargo_app.h"
#include "common/rng.h"
#include "net/synthetic_bandwidth.h"
#include "system/etrain_system.h"

int main() {
  using namespace etrain;

  // 1. The device: measured Galaxy S4 3G radio + a 2-hour urban uplink
  //    trace (the synthetic stand-in for the paper's Wuhan recording).
  system::EtrainSystem::Config config;
  config.horizon = hours(2.0);
  config.model = radio::PowerModel::PaperUmts3G();
  config.service.scheduler = {.theta = 0.2, .k = 20};
  system::EtrainSystem device(config, net::wuhan_trace());

  // 2. Train apps: their daemons arm AlarmManager and send keep-alives;
  //    eTrain's Xposed hook observes every beat.
  const auto trains = apps::default_train_specs();
  for (std::size_t i = 0; i < trains.size(); ++i) {
    device.add_train_app(trains[i], /*first_beat=*/5.0 * i);
  }

  // 3. A cargo app: eTrain Mail, Poisson arrivals, 5 KB messages.
  Rng rng(2015);
  const auto mail = apps::mail_spec();
  auto workload = apps::generate_arrivals(mail, /*app_id=*/0, config.horizon,
                                          rng);
  std::printf("generated %zu mails over %.0f minutes\n", workload.size(),
              config.horizon / 60.0);
  device.add_cargo_app(0, *mail.profile, std::move(workload));

  // 4. Run and report.
  const auto metrics = device.run();
  std::printf("\n--- eTrain run report ---\n");
  std::printf("transmissions: %zu (%zu heartbeats, %zu data)\n",
              metrics.log.size(),
              metrics.log.count(radio::TxKind::kHeartbeat),
              metrics.log.count(radio::TxKind::kData));
  std::printf("network energy: %s (heartbeats %s, cargo %s)\n",
              format_joules(metrics.network_energy()).c_str(),
              format_joules(metrics.heartbeat_energy()).c_str(),
              format_joules(metrics.data_energy()).c_str());
  std::printf("average mail delay: %.1f s, deadline violations: %.1f %%\n",
              metrics.normalized_delay, 100.0 * metrics.violation_ratio);

  // What would the same workload cost without eTrain? Each mail would pay
  // its own radio tail.
  const auto& model = config.model;
  const Joules naive_tails =
      static_cast<double>(metrics.outcomes.size()) * model.full_tail_energy();
  std::printf(
      "without piggybacking those %zu mails would pay ~%s in tails alone\n",
      metrics.outcomes.size(), format_joules(naive_tails).c_str());
  return 0;
}
