// Email batching scenario: how deadlines shape eTrain's behaviour, and how
// to plug a custom delay-cost profile into the scheduler.
//
// An e-mail client is the classic delay-tolerant cargo app: nobody notices
// a message leaving two minutes late, so eTrain can hold outgoing mail for
// the next heartbeat train. This example sweeps the user-visible deadline
// and also registers a custom "impatient" profile to show the extension
// point.
#include <cstdio>

#include "apps/cargo_app.h"
#include "baselines/baseline_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"

namespace {

using namespace etrain;

// A custom profile: cost ramps quadratically — patient at first, then
// sharply demanding. Any CostProfile subclass can be attached to packets.
class ImpatientProfile final : public core::CostProfile {
 public:
  double cost(Duration delay, Duration deadline) const override {
    if (delay <= 0.0) return 0.0;
    const double r = delay / deadline;
    return r * r;
  }
  std::string name() const override { return "impatient-quadratic"; }
};

experiments::Scenario mail_scenario(Duration deadline,
                                    const core::CostProfile& profile) {
  experiments::Scenario s;
  s.horizon = hours(2.0);
  s.model = radio::PowerModel::PaperUmts3G();
  s.trace = net::wuhan_trace();
  s.trains = apps::build_train_schedule(apps::default_train_specs(),
                                        s.horizon);
  auto spec = apps::mail_spec();
  spec.deadline = deadline;
  Rng rng(7);
  s.packets = apps::generate_arrivals(spec, 0, s.horizon, rng);
  s.profiles = {&profile};
  return s;
}

}  // namespace

int main() {
  using namespace etrain;
  std::printf("eTrain example: e-mail batching under different deadlines\n");

  Table table({"deadline_s", "profile", "energy_J", "vs baseline", "delay_s",
               "violations"});
  const ImpatientProfile impatient;
  for (const Duration deadline : {60.0, 120.0, 300.0, 600.0}) {
    for (const core::CostProfile* profile :
         {static_cast<const core::CostProfile*>(&core::mail_cost_profile()),
          static_cast<const core::CostProfile*>(&impatient)}) {
      const auto scenario = mail_scenario(deadline, *profile);
      baselines::BaselinePolicy baseline;
      core::EtrainScheduler etrain({.theta = 0.2, .k = 20});
      const auto mb = experiments::run_slotted(scenario, baseline);
      const auto me = experiments::run_slotted(scenario, etrain);
      table.add_row(
          {Table::num(deadline, 0), profile->name(),
           Table::num(me.network_energy(), 1),
           Table::num(100.0 * (1.0 - me.network_energy() /
                                         mb.network_energy()),
                      1) +
               " % less",
           Table::num(me.normalized_delay, 1),
           Table::num(100.0 * me.violation_ratio, 1) + " %"});
    }
  }
  table.print();
  std::printf(
      "longer deadlines let mail ride later trains (more energy saved); the "
      "impatient profile forces earlier departures at higher energy.\n");
  return 0;
}
