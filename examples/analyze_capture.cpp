// Capture analysis tool: the Table 1 methodology on your own data.
//
//   ./build/examples/analyze_capture capture.csv
//
// The CSV has one packet per row, "time_s,size_bytes,flow" (a trivial
// tshark export: `tshark -r trace.pcap -T fields -e frame.time_relative
// -e frame.len -e ip.dst -E separator=,`). Run without arguments to see
// the pipeline on a bundled synthetic capture of the paper's five apps.
#include <cstdio>
#include <filesystem>

#include "android/pcap.h"
#include "common/table.h"

namespace {

using namespace etrain;

std::string demo_capture_path() {
  // Synthesize the paper's measurement session: five apps, four hours,
  // foreground use mixed in; store it as the CSV a user would bring.
  Rng rng(2014);
  std::vector<android::CapturedPacket> capture;
  for (const auto& spec : apps::android_catalog()) {
    const auto app_capture =
        android::synthesize_capture(spec, hours(4.0), rng, true);
    capture.insert(capture.end(), app_capture.begin(), app_capture.end());
  }
  const auto dir = std::filesystem::temp_directory_path() / "etrain_example";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "demo_capture.csv").string();
  android::save_capture_csv(capture, path);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : demo_capture_path();
  std::printf("analyzing capture: %s\n", path.c_str());

  const auto capture = android::load_capture_csv(path);
  std::printf("%zu packets loaded\n", capture.size());

  const android::PcapAnalyzer analyzer;
  Table table({"flow", "heartbeats", "cycle", "discipline"});
  for (const auto& e : analyzer.analyze(capture)) {
    std::string cycle, discipline;
    if (e.heartbeats < 2) {
      cycle = "n/a";
      discipline = "too few beats";
    } else if (e.fixed_cycle) {
      cycle = Table::num(e.median_cycle, 0) + " s";
      discipline = "fixed";
    } else {
      cycle = Table::num(e.min_cycle, 0) + "-" +
              Table::num(e.max_cycle, 0) + " s";
      discipline = "growing/variable";
    }
    table.add_row({e.flow,
                   Table::integer(static_cast<long long>(e.heartbeats)),
                   cycle, discipline});
  }
  table.print();
  std::printf(
      "flows with stable cycles are usable as eTrain trains; feed their "
      "specs to EtrainSystem::add_train_app.\n");
  return 0;
}
