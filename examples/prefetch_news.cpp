// News prefetching scenario: downloads riding heartbeats.
//
// A news app (NetEase-style, with its doubling heartbeat cycle) wants fresh
// articles waiting for the user: it prefetches story bundles — *downlink*
// cargo — which eTrain defers onto upcoming heartbeat tails exactly as it
// does uploads (Sec. V-4: requests may "download some data, mainly for
// prefetching purpose"). Downloads ride the faster downlink, so their
// transmission energy is small and the tail economics dominate even more.
#include <cstdio>

#include "apps/cargo_app.h"
#include "baselines/baseline_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"

int main() {
  using namespace etrain;
  std::printf("eTrain example: news prefetching over heartbeat tails\n");

  experiments::Scenario s;
  s.horizon = hours(2.0);
  s.model = radio::PowerModel::PaperUmts3G();
  s.trace = net::wuhan_trace();
  // Downlink: same fading, 3x the rate.
  {
    auto samples = s.trace.samples();
    for (auto& v : samples) v *= 3.0;
    s.downlink_trace = net::BandwidthTrace(std::move(samples));
  }
  // The news app is its own train: NetEase's doubling heartbeat plus the
  // usual IM trio.
  auto trains = apps::default_train_specs();
  trains.push_back(apps::netease_spec());
  s.trains = apps::build_train_schedule(trains, s.horizon);

  // Prefetch workload: ~40 KB story bundles every ~2 minutes, all
  // downloads, generous deadlines (prefetching is speculative).
  apps::CargoAppSpec news;
  news.name = "NewsPrefetch";
  news.mean_interarrival = 120.0;
  news.size_mean = 40000.0;
  news.size_stddev = 15000.0;
  news.size_min = 5000.0;
  news.deadline = 300.0;
  news.profile = &core::mail_cost_profile();  // silent until the deadline
  news.download_fraction = 1.0;
  Rng rng(314);
  s.packets = apps::generate_arrivals(news, 0, s.horizon, rng);
  s.profiles = {news.profile};

  std::size_t downloads = 0;
  for (const auto& p : s.packets) {
    if (p.direction == core::Direction::kDownlink) ++downloads;
  }
  std::printf("workload: %zu prefetch bundles (%zu downloads), %zu trains\n",
              s.packets.size(), downloads, s.trains.size());

  Table table({"policy", "energy_J", "tx_J", "tail_J", "delay_s"});
  baselines::BaselinePolicy baseline;
  core::EtrainScheduler etrain({.theta = 0.2, .k = 20});
  for (core::SchedulingPolicy* policy :
       {static_cast<core::SchedulingPolicy*>(&baseline),
        static_cast<core::SchedulingPolicy*>(&etrain)}) {
    const auto m = experiments::run_slotted(s, *policy);
    table.add_row({m.policy_name, Table::num(m.network_energy(), 1),
                   Table::num(m.energy.tx_energy, 1),
                   Table::num(m.energy.tail_energy(), 1),
                   Table::num(m.normalized_delay, 1)});
  }
  table.print();
  std::printf(
      "prefetches are invisible to the user until they open the app, so "
      "even minute-scale deferral is free — the ideal cargo.\n");
  return 0;
}
