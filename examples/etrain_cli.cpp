// etrain_cli — command-line simulation runner.
//
// The tool a downstream user reaches for first: run any policy over the
// standard scenario with every knob exposed, print the metric summary, and
// optionally dump per-packet outcomes and the transmission log as CSV.
//
//   ./build/examples/etrain_cli --policy=etrain:theta=1 --lambda=0.08
//   ./build/examples/etrain_cli --policy=etime:v=2 --radio=3g:sim
//   ./build/examples/etrain_cli --policy=baseline --csv=/tmp/run
//   ./build/examples/etrain_cli --policy=etrain --loss=0.05 --outage-duty=0.1
//   ./build/examples/etrain_cli --radio=lte_cdrx:inactivity=5 \
//       --interfaces=lora:sf=9,heartbeat_period=30 \
//       --policy='select:lora;fallback=etrain'
//
// Flags (all optional):
//   --policy=<spec>        a PolicyRegistry spec: a name optionally
//                          followed by knobs, e.g. etrain:theta=2,k=3 or
//                          peres:omega=0.8; --list-policies shows all
//   --lambda=<pkts/s>      total cargo arrival rate          (0.08)
//   --trains=<0..3>        number of train apps              (3)
//   --horizon=<s>          simulated seconds                 (7200)
//   --seed=<n>             workload seed                     (42)
//   --radio=<spec>         a ModelRegistry spec for the primary radio,
//                          e.g. 3g:paper, lte_cdrx:inactivity=5 or
//                          3g:sim,dch_tail=6; --list-radios shows all
//                          (legacy names device/sim/realistic/lte/
//                          fastdormancy still accepted)      (3g:paper)
//   --interfaces=<specs>   ';'-separated extra radio specs attached on
//                          interface slots 2+ (lora:sf=9,...)
//   --deadline=<s>         shared deadline override          (per-app)
//   --csv=<prefix>         write <prefix>_outcomes.csv and <prefix>_log.csv
//   --report=<path>        emit a RunReport (provenance + energy ledger +
//                          metrics) validated by examples/report_check
// Fault injection (docs/faults.md):
//   --loss=<p>             per-attempt transfer loss probability  (0)
//   --outage-duty=<f>      fraction of the horizon in coverage outage (0)
//   --outage-mean=<s>      mean outage episode length        (120)
//   --hb-jitter=<s>        heartbeat departure jitter sigma  (0)
//   --hb-drop=<p>          heartbeat drop probability        (0)
//   --fault-seed=<n>       seed for every fault draw         (1)
// Legacy knob flags --theta/--k/--omega/--v are still honoured.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "baselines/registry.h"
#include "common/csv.h"
#include "common/table.h"
#include "exp/run_report.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "radio/model_registry.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg] = "true";
    } else {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

double flag_num(const std::map<std::string, std::string>& flags,
                const std::string& key, double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

std::string flag_str(const std::map<std::string, std::string>& flags,
                     const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

/// Maps the pre-registry --radio names onto their specs; anything else is
/// already a ModelRegistry spec and passes through untouched.
std::string radio_spec_for(const std::string& name) {
  if (name == "device") return "3g:paper";
  if (name == "sim") return "3g:sim";
  if (name == "realistic") return "3g:realistic";
  if (name == "lte") return "lte_drx";
  if (name == "fastdormancy") return "3g:fast_dormancy";
  return name;
}

std::vector<std::string> split_specs(const std::string& joined) {
  std::vector<std::string> specs;
  std::size_t pos = 0;
  while (pos <= joined.size()) {
    const std::size_t sep = joined.find(';', pos);
    const std::string part = joined.substr(
        pos, sep == std::string::npos ? std::string::npos : sep - pos);
    if (!part.empty()) specs.push_back(part);
    if (sep == std::string::npos) break;
    pos = sep + 1;
  }
  return specs;
}

/// Builds the policy through the registry. The spec carries its own knobs
/// (--policy=etrain:theta=2,k=3); the legacy standalone flags --theta, --k,
/// --defer, --omega and --v are appended for backwards compatibility when
/// the spec itself does not set them.
std::unique_ptr<core::SchedulingPolicy> policy_from_flags(
    std::string spec, const std::map<std::string, std::string>& flags) {
  try {
    // Raw specs ("select:wifi;fallback=etrain") do not follow the generic
    // knob grammar, so only the legacy knob-bearing policies are
    // pre-parsed here; everything else goes to the registry untouched.
    const std::string name = spec.substr(0, spec.find(':'));
    if (name == "etrain" || name == "etrain+wifi" || name == "peres" ||
        name == "etime") {
      core::PolicyParams params;
      core::PolicyRegistry::parse_spec(spec, &params);
      const auto append_legacy = [&](const char* flag, const char* knob) {
        const auto it = flags.find(flag);
        if (it == flags.end() || params.has(knob)) return;
        spec += (spec.find(':') == std::string::npos ? ":" : ",");
        spec += std::string(knob) + "=" + it->second;
      };
      if (name == "peres") {
        append_legacy("omega", "omega");
      } else if (name == "etime") {
        append_legacy("v", "v");
      } else {
        append_legacy("theta", "theta");
        append_legacy("k", "k");
        append_legacy("defer", "drip_defer_window");
      }
    }
    return baselines::make_policy(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

void dump_csv(const RunMetrics& m, const std::string& prefix) {
  {
    CsvWriter w(prefix + "_outcomes.csv");
    w.write_comment("per-packet outcomes");
    w.write_row({"packet", "app", "arrival_s", "sent_s", "delay_s", "bytes",
                 "cost", "violated"});
    for (const auto& o : m.outcomes) {
      w.write_row({std::to_string(o.id), std::to_string(o.app),
                   std::to_string(o.arrival), std::to_string(o.sent),
                   std::to_string(o.delay), std::to_string(o.bytes),
                   std::to_string(o.cost), o.violated ? "1" : "0"});
    }
  }
  {
    CsvWriter w(prefix + "_log.csv");
    w.write_comment("radio transmission log");
    w.write_row({"start_s", "setup_s", "duration_s", "bytes", "kind", "app",
                 "packet"});
    for (const auto& tx : m.log.entries()) {
      w.write_row({std::to_string(tx.start), std::to_string(tx.setup),
                   std::to_string(tx.duration), std::to_string(tx.bytes),
                   tx.kind == radio::TxKind::kHeartbeat ? "heartbeat" : "data",
                   std::to_string(tx.app_id), std::to_string(tx.packet_id)});
    }
  }
  std::printf("wrote %s_outcomes.csv and %s_log.csv\n", prefix.c_str(),
              prefix.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv);
  if (flags.contains("help")) {
    std::printf("see the header comment of examples/etrain_cli.cpp\n");
    return 0;
  }
  if (flags.contains("list-policies")) {
    const auto& registry = baselines::builtin_registry();
    for (const auto& name : registry.names()) {
      std::printf("%-14s %s\n", name.c_str(), registry.help(name).c_str());
    }
    return 0;
  }
  if (flags.contains("list-radios")) {
    const auto& registry = radio::builtin_model_registry();
    for (const auto& name : registry.names()) {
      std::printf("%-14s %s\n", name.c_str(), registry.help(name).c_str());
    }
    return 0;
  }

  ScenarioBuilder builder;
  builder.lambda(flag_num(flags, "lambda", 0.08))
      .trains(static_cast<int>(flag_num(flags, "trains", 3)))
      .horizon(flag_num(flags, "horizon", 7200.0))
      .workload_seed(static_cast<std::uint64_t>(flag_num(flags, "seed", 42)));
  try {
    builder.radio(radio_spec_for(flag_str(flags, "radio", "3g:paper")));
    if (flags.contains("interfaces")) {
      builder.interfaces(split_specs(flag_str(flags, "interfaces", "")));
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (flags.contains("deadline")) {
    builder.shared_deadline(flag_num(flags, "deadline", 60.0));
  }
  builder.loss(flag_num(flags, "loss", 0.0))
      .heartbeat_jitter(flag_num(flags, "hb-jitter", 0.0))
      .heartbeat_drops(flag_num(flags, "hb-drop", 0.0))
      .fault_seed(static_cast<std::uint64_t>(flag_num(flags, "fault-seed", 1)));
  if (flags.contains("outage-duty")) {
    builder.outages(flag_num(flags, "outage-duty", 0.0),
                    flag_num(flags, "outage-mean", 120.0));
  }
  const Scenario scenario = builder.build();

  const std::string policy_spec = flag_str(flags, "policy", "etrain");
  const auto policy = policy_from_flags(policy_spec, flags);
  const RunMetrics m = run_slotted(scenario, *policy);

  Table table({"metric", "value"});
  table.add_row({"policy", m.policy_name});
  table.add_row({"packets", Table::integer(
                                static_cast<long long>(m.outcomes.size()))});
  table.add_row({"heartbeats",
                 Table::integer(static_cast<long long>(
                     m.log.count(radio::TxKind::kHeartbeat)))});
  if (scenario.faults.enabled()) {
    table.add_row({"failed attempts", Table::integer(static_cast<long long>(
                                          m.log.failed_count()))});
    table.add_row(
        {"failed airtime", Table::num(m.log.failed_airtime(), 2) + " s"});
  }
  table.add_row({"network energy", format_joules(m.network_energy())});
  table.add_row({"  heartbeat share", format_joules(m.heartbeat_energy())});
  table.add_row({"  cargo share", format_joules(m.data_energy())});
  table.add_row({"  tail energy", format_joules(m.energy.tail_energy())});
  table.add_row({"  tx energy", format_joules(m.energy.tx_energy)});
  table.add_row({"idle baseline", format_joules(m.energy.idle_baseline)});
  table.add_row({"normalized delay", Table::num(m.normalized_delay, 2) + " s"});
  table.add_row(
      {"violation ratio", Table::num(100.0 * m.violation_ratio, 2) + " %"});
  table.add_row({"full tails", Table::integer(static_cast<long long>(
                                   m.energy.full_tails))});
  table.add_row({"truncated tails", Table::integer(static_cast<long long>(
                                        m.energy.truncated_tails))});
  table.add_row({"cold starts", Table::integer(static_cast<long long>(
                                    m.energy.cold_starts))});
  table.print();

  std::printf("\n%s\n", radio::to_string(m.energy).c_str());
  if (m.wifi_log.size() > 0) {
    std::printf("wifi: %s\n", radio::to_string(m.wifi_energy).c_str());
  }
  for (const auto& extra : m.extras) {
    std::printf("%s: %s\n", extra.name.c_str(),
                radio::to_string(extra.energy).c_str());
  }

  if (flags.contains("csv")) dump_csv(m, flag_str(flags, "csv", "etrain_run"));
  if (flags.contains("report")) {
    obs::RunReport report = report_for_run("etrain_cli", scenario, m);
    report.add_provenance("policy_spec", policy_spec);
    obs::finalize_run_report(flag_str(flags, "report", "etrain_run.json"),
                             std::move(report));
  }
  return 0;
}
