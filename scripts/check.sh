#!/usr/bin/env sh
# One-command gate: configure, build, run the test suite, then smoke-test
# the parallel experiment engine's determinism guarantee (serial-vs-parallel
# checksums must match bit for bit; see docs/determinism.md).
#
# Usage: scripts/check.sh [build-dir]        (default: build)
set -eu

BUILD_DIR="${1:-build}"

cd "$(dirname "$0")/.."

# Only pick a generator on first configure; an existing cache keeps its own.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -G Ninja
else
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j

ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# bench_parallel_scaling exits non-zero if any thread count produces a
# result that differs from the serial reference.
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_parallel_scaling" --quick

echo "check.sh: all green"
