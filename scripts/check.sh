#!/usr/bin/env sh
# One-command gate: configure, build, run the test suite, then smoke-test
# the parallel experiment engine's determinism guarantee (serial-vs-parallel
# checksums must match bit for bit; see docs/determinism.md).
#
# Usage: scripts/check.sh [build-dir]        (default: build)
set -eu

BUILD_DIR="${1:-build}"

cd "$(dirname "$0")/.."

# Only pick a generator on first configure; an existing cache keeps its own.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -G Ninja
else
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j

ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# bench_parallel_scaling exits non-zero if any thread count produces a
# result that differs from the serial reference.
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_parallel_scaling" --quick

# Fault-injection smoke: the loss x outage sweep re-checks the same
# serial-vs-parallel bit-identity under hashed fault draws, and that
# fault-free cells record zero fault activity (see docs/faults.md).
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_faults" --quick

# Observability smoke: one traced fig10 run, then validate the Chrome
# trace (well-formed JSON, monotone timestamps, TailCharge sum matches the
# reported tail energy) — see docs/observability.md.
mkdir -p results
"./$BUILD_DIR/bench/bench_fig10_controlled" --quick \
  --trace results/fig10.trace.json \
  --timeline results/fig10.power_timeline.csv
"./$BUILD_DIR/examples/trace_check" results/fig10.trace.json

# One AddressSanitizer pass over the fault-injection tests: the new
# failure/retry/teardown paths juggle completion callbacks and requeue
# buffers — exactly the code ASan exists for. Separate build dir: never mix
# instrumented and plain objects in one cache.
ASAN_DIR="${BUILD_DIR}-asan"
if [ ! -f "$ASAN_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  cmake -B "$ASAN_DIR" -S . -G Ninja -DETRAIN_SANITIZE=address
else
  cmake -B "$ASAN_DIR" -S . -DETRAIN_SANITIZE=address
fi
cmake --build "$ASAN_DIR" -j --target \
  net_radio_link_test net_fault_plan_test exp_faults_test
"./$ASAN_DIR/tests/net_radio_link_test"
"./$ASAN_DIR/tests/net_fault_plan_test"
"./$ASAN_DIR/tests/exp_faults_test"

echo "check.sh: all green"
