#!/usr/bin/env sh
# One-command gate: configure, build, run the test suite, then smoke-test
# the parallel experiment engine's determinism guarantee (serial-vs-parallel
# checksums must match bit for bit; see docs/determinism.md).
#
# Usage: scripts/check.sh [build-dir]        (default: build)
set -eu

BUILD_DIR="${1:-build}"

cd "$(dirname "$0")/.."

# Only pick a generator on first configure; an existing cache keeps its own.
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  cmake -B "$BUILD_DIR" -S . -G Ninja
else
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j

ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# bench_parallel_scaling exits non-zero if any thread count produces a
# result that differs from the serial reference.
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_parallel_scaling" --quick

# Fault-injection smoke: the loss x outage sweep re-checks the same
# serial-vs-parallel bit-identity under hashed fault draws, and that
# fault-free cells record zero fault activity (see docs/faults.md).
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_faults" --quick

# Observability smoke: one traced fig10 run, then validate the Chrome
# trace (well-formed JSON, monotone timestamps, TailCharge sum matches the
# reported tail energy) — see docs/observability.md.
mkdir -p results
"./$BUILD_DIR/bench/bench_fig10_controlled" --quick \
  --trace results/fig10.trace.json \
  --timeline results/fig10.power_timeline.csv \
  --report results/fig10.report.json
"./$BUILD_DIR/examples/trace_check" results/fig10.trace.json

# Run-report gate (docs/observability.md): a quick bench suite emits
# BENCH_*.json run reports, each schema-checked and cross-validated —
# fig10 against its Chrome trace (same run: network/tail/transmission
# totals must agree to 1e-9 J), fig07 against the CSV artifacts it wrote.
"./$BUILD_DIR/examples/report_check" results/fig10.report.json \
  --trace results/fig10.trace.json
"./$BUILD_DIR/bench/bench_fig07_parameters" --quick \
  --report results/fig07.report.json
"./$BUILD_DIR/examples/report_check" results/fig07.report.json --artifacts
"./$BUILD_DIR/bench/bench_summary" --quick \
  --report results/summary.report.json
"./$BUILD_DIR/examples/report_check" results/summary.report.json

# Determinism, at the report level: the compared sections (everything
# except the wall-clock `environment`/`profile` tail) of a serial and a
# parallel run of the same bench must match exactly (tolerance 0).
ETRAIN_JOBS=1 "./$BUILD_DIR/bench/bench_fig08_comparison" --quick \
  --report results/fig08.serial.report.json
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_fig08_comparison" --quick \
  --report results/fig08.parallel.report.json
scripts/compare_reports results/fig08.serial.report.json \
  results/fig08.parallel.report.json

# Report/profile overhead gate: bench_micro --quick skips the
# google-benchmark suite but still runs the paired-median overhead guards
# (tracing and profiling must each stay within 2% of the frozen reference
# select kernel) and exits nonzero on regression.
"./$BUILD_DIR/bench/bench_micro" --quick --report results/micro.report.json
"./$BUILD_DIR/examples/report_check" results/micro.report.json

# Perf gate (docs/performance.md): bench_throughput validates every policy
# serial-vs-parallel first, then times the engine. The deterministic
# `results` section of a serial and a parallel run must match exactly, and
# the wall-clock slots/sec must clear the committed conservative floors in
# bench/baselines/ (0.9 x an already ~50%-of-measured baseline, so only a
# real hot-path regression trips it, not scheduler jitter).
ETRAIN_JOBS=1 "./$BUILD_DIR/bench/bench_throughput" --quick \
  --report results/throughput.serial.report.json
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_throughput" --quick \
  --report results/throughput.parallel.report.json
"./$BUILD_DIR/examples/report_check" results/throughput.serial.report.json
"./$BUILD_DIR/examples/report_check" results/throughput.parallel.report.json
scripts/compare_reports results/throughput.serial.report.json \
  results/throughput.parallel.report.json
scripts/compare_reports bench/baselines/throughput.baseline.json \
  results/throughput.serial.report.json --floors-only \
  --floor slots_per_sec_etrain=0.9 \
  --floor slots_per_sec_baseline=0.9 \
  --floor slots_per_sec_peres=0.9 \
  --floor slots_per_sec_etime=0.9

# Fleet gate (docs/fleet.md): bench_fleet simulates the heterogeneous
# city; the compared sections (population totals, per-class aggregates,
# the fleet ledger) must be byte-identical between a serial 1-shard run
# and a parallel 8-shard run, each report must pass report_check's fleet
# cross-checks (ledger re-bills the summed device meters), and the
# wall-clock devices/sec must clear the committed floor.
ETRAIN_JOBS=1 "./$BUILD_DIR/bench/bench_fleet" --quick --shards 1 \
  --report results/fleet.serial.report.json
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_fleet" --quick --shards 8 \
  --report results/fleet.parallel.report.json
"./$BUILD_DIR/examples/report_check" results/fleet.serial.report.json
"./$BUILD_DIR/examples/report_check" results/fleet.parallel.report.json
scripts/compare_reports results/fleet.serial.report.json \
  results/fleet.parallel.report.json
scripts/compare_reports bench/baselines/fleet.baseline.json \
  results/fleet.serial.report.json --floors-only \
  --floor devices_per_sec=0.9 \
  --floor slots_per_sec=0.9

# Multi-interface gate (docs/radios.md): bench_multi_interface assembles
# its interface mixes purely from ModelRegistry spec strings (3G-only,
# Wi-Fi + LTE-CDRX, 3G + a LoRa heartbeat source) and routes per packet
# via the "select:" policy layer. The report's ledger carries every
# interface's rows (report_check re-bills them), and each mix's headline
# savings must clear the committed floor — a collapse means the registry
# or the routing layer broke.
"./$BUILD_DIR/bench/bench_multi_interface" --quick \
  --report results/multi_interface.report.json
"./$BUILD_DIR/examples/report_check" results/multi_interface.report.json
scripts/compare_reports bench/baselines/multi_interface.baseline.json \
  results/multi_interface.report.json --floors-only \
  --floor savings_pct_c3g=0.9 \
  --floor savings_pct_wifi_cdrx=0.9 \
  --floor savings_pct_lora=0.9

# Gateway gate (docs/gateway.md): a quick bench_gateway run — real epoll
# loop on an ephemeral loopback port, 1000 seeded clients at 60x time
# compression — must connect every client, ACK every cargo packet, and
# write a manifest whose gateway section report_check validates (exact
# client/packet partitions, ledger re-bills the client energy meter to
# 1e-9 J x clients). The wall-clock rates then gate against the committed
# floors; the latency floor is on 1/p99 so it bounds the p99 from above.
"./$BUILD_DIR/bench/bench_gateway" --quick \
  --report results/gateway.report.json
"./$BUILD_DIR/examples/report_check" results/gateway.report.json
scripts/compare_reports bench/baselines/gateway.baseline.json \
  results/gateway.report.json --floors-only \
  --floor connections_per_sec=0.9 \
  --floor scheduled_packets_per_sec=0.9 \
  --floor p99_latency_inverse_per_s=0.9

# Sharded-gateway scaling gate (docs/gateway.md#sharding): the same quick
# bench across 4 SO_REUSEPORT worker shards, driven with 2000 clients so
# the offered load exceeds what one shard's paced window sustains. The
# _shards4 floor is committed at 2x the 1-shard scheduled-packets floor —
# sharding must actually scale throughput, not just pass — and the
# inverse-p99 bound keeps the latency tail honest while it does. The fold
# invariants (exact partitions, ledger vs meter) hold at any shard count:
# report_check validates the 4-shard manifest exactly like the 1-shard one.
"./$BUILD_DIR/bench/bench_gateway" --quick --shards 4 --clients 2000 \
  --report results/gateway.shards4.report.json
"./$BUILD_DIR/examples/report_check" results/gateway.shards4.report.json
scripts/compare_reports bench/baselines/gateway.baseline.json \
  results/gateway.shards4.report.json --floors-only \
  --floor scheduled_packets_per_sec_shards4=0.9 \
  --floor p99_latency_inverse_per_s_shards4=0.9

# Live telemetry gate (docs/live_telemetry.md): a real etrain_gatewayd
# process serves its stats plane on an ephemeral port; check_prom.py waits
# on /healthz, fetches /metrics itself (no curl needed) and lints the
# exposition document — format, cumulative histogram buckets, sorted
# families, and the gateway's required counter/gauge set. The daemon runs
# with --shards 2 so the scrape also proves the shard-labeled families and
# their aggregates (docs/live_telemetry.md#shard-labels) — shard 0 serves
# the plane while scraping shard 1's published snapshot. SIGTERM then
# ends the daemon gracefully and report_check validates its manifest.
"./$BUILD_DIR/examples/etrain_gatewayd" --port 0 --stats-port 0 \
  --shards 2 --time-scale 50 --report results/gatewayd.live.report.json \
  > results/gatewayd.live.log 2>&1 &
GATEWAYD_PID=$!
STATS_PORT=""
for _ in $(seq 1 100); do
  STATS_PORT=$(sed -n 's/.*stats on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    results/gatewayd.live.log)
  [ -n "$STATS_PORT" ] && break
  sleep 0.1
done
[ -n "$STATS_PORT" ] || {
  echo "check.sh: etrain_gatewayd never printed its stats port" >&2
  cat results/gatewayd.live.log >&2
  kill "$GATEWAYD_PID" 2>/dev/null || true
  exit 1
}
python3 scripts/check_prom.py --port "$STATS_PORT" \
  --require etrain_up \
  --require etrain_gateway_clients_accepted_total \
  --require etrain_gateway_heartbeats_total \
  --require etrain_gateway_packets_enqueued_total \
  --require etrain_gateway_packets_scheduled_total \
  --require etrain_gateway_protocol_errors_total \
  --require etrain_gateway_live_sessions \
  --require etrain_gateway_queued_cargo \
  --require etrain_gateway_rrc_sessions \
  --require etrain_gateway_heartbeat_staleness_max_seconds \
  --require etrain_gateway_latency_s_bucket \
  --require etrain_gateway_latency_s_p99 \
  --require etrain_gateway_tick_lag_seconds \
  --require etrain_gateway_shards \
  --require 'etrain_gateway_shard_connections{shard="0"}' \
  --require 'etrain_gateway_shard_connections{shard="1"}' \
  --require 'etrain_gateway_shard_tick_lag_seconds{shard="1"}' \
  --require 'etrain_gateway_shard_clients_accepted{shard="1"}'
kill -TERM "$GATEWAYD_PID"
wait "$GATEWAYD_PID"
"./$BUILD_DIR/examples/report_check" results/gatewayd.live.report.json

# Fleet progress reporting (docs/fleet.md): a --progress run must emit at
# least one machine-parseable "fleet progress devices=" line ending at
# devices=N/N, and its report must stay byte-identical to the progress-free
# serial run above (observation only, never perturbation).
ETRAIN_JOBS=2 "./$BUILD_DIR/bench/bench_fleet" --quick --shards 8 \
  --progress --report results/fleet.progress.report.json \
  > results/fleet.progress.log
grep "^fleet progress " results/fleet.progress.log
grep -q "^fleet progress devices=5000/5000 " results/fleet.progress.log || {
  echo "check.sh: bench_fleet --progress never reported completion" >&2
  exit 1
}
scripts/compare_reports results/fleet.serial.report.json \
  results/fleet.progress.report.json

# Docs lint (docs/README.md): every intra-repo markdown link resolves and
# every docs/*.md page is reachable from the README index.
python3 scripts/check_docs.py

# One AddressSanitizer pass over the fault-injection tests: the new
# failure/retry/teardown paths juggle completion callbacks and requeue
# buffers — exactly the code ASan exists for. Separate build dir: never mix
# instrumented and plain objects in one cache.
ASAN_DIR="${BUILD_DIR}-asan"
if [ ! -f "$ASAN_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  cmake -B "$ASAN_DIR" -S . -G Ninja -DETRAIN_SANITIZE=address
else
  cmake -B "$ASAN_DIR" -S . -DETRAIN_SANITIZE=address
fi
cmake --build "$ASAN_DIR" -j --target \
  net_radio_link_test net_fault_plan_test exp_faults_test
"./$ASAN_DIR/tests/net_radio_link_test"
"./$ASAN_DIR/tests/net_fault_plan_test"
"./$ASAN_DIR/tests/exp_faults_test"

# One ThreadSanitizer pass over the sharded gateway: worker shards share
# nothing but the snapshot mutexes, the hand-off mailbox and the shutdown
# fold's thread join — exactly the seams TSan exists to police. The gate
# runs the gateway test binaries (daemon, stats plane, shards) plus a
# short multi-shard bench so the SO_REUSEPORT accept path, the per-shard
# snapshot publishing and the contribution hand-over all execute under
# instrumentation. Separate build dir, same rule as ASan.
TSAN_DIR="${BUILD_DIR}-tsan"
if [ ! -f "$TSAN_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  cmake -B "$TSAN_DIR" -S . -G Ninja -DETRAIN_SANITIZE=thread
else
  cmake -B "$TSAN_DIR" -S . -DETRAIN_SANITIZE=thread
fi
cmake --build "$TSAN_DIR" -j --target \
  gateway_daemon_test gateway_stats_test gateway_shard_test bench_gateway
"./$TSAN_DIR/tests/gateway_daemon_test"
"./$TSAN_DIR/tests/gateway_stats_test"
"./$TSAN_DIR/tests/gateway_shard_test"
"./$TSAN_DIR/bench/bench_gateway" --quick --shards 2 --clients 200 \
  --duration 30

# Observability-disabled build: with -DETRAIN_OBS_DISABLED=ON the trace
# and profile hot paths compile out, but benches must still emit valid run
# reports (manifest + energy + ledger, build.obs=false, no profile tree).
# obs_report_test carries an extra DisabledBuildStillEmitsManifestAndEnergy
# case in this configuration.
NOOBS_DIR="${BUILD_DIR}-noobs"
if [ ! -f "$NOOBS_DIR/CMakeCache.txt" ] && command -v ninja >/dev/null 2>&1; then
  cmake -B "$NOOBS_DIR" -S . -G Ninja -DETRAIN_OBS_DISABLED=ON
else
  cmake -B "$NOOBS_DIR" -S . -DETRAIN_OBS_DISABLED=ON
fi
cmake --build "$NOOBS_DIR" -j --target \
  obs_report_test bench_fig04_power_states report_check
"./$NOOBS_DIR/tests/obs_report_test"
"./$NOOBS_DIR/bench/bench_fig04_power_states" \
  --report results/fig04.noobs.report.json
"./$NOOBS_DIR/examples/report_check" results/fig04.noobs.report.json

echo "check.sh: all green"
