# gnuplot script for the CSV series the benches export under results/.
#
#   cmake --build build
#   ./build/bench/bench_fig07_parameters && ./build/bench/bench_fig08_comparison
#   gnuplot scripts/plot_figures.gp     # writes results/*.png
#
# Each exported file is "param,energy_J,delay_s,violation" (header row).

set datafile separator ","
set terminal pngcairo size 900,600 font ",11"
set key top right
set grid

# --- Fig. 7(a): Theta sweep -------------------------------------------------
set output "results/fig07a.png"
set title "Fig. 7(a) reproduction: impact of the cost bound Theta"
set xlabel "Theta"
set ylabel "network energy (J)"
set y2label "normalized delay (s)"
set y2tics
plot "results/fig07a_theta_sweep.csv" skip 1 using 1:2 with linespoints \
         title "energy (J)" axes x1y1, \
     "results/fig07a_theta_sweep.csv" skip 1 using 1:3 with linespoints \
         title "delay (s)" axes x1y2

# --- Fig. 7(b): E-D panel for k ----------------------------------------------
set output "results/fig07b.png"
set title "Fig. 7(b) reproduction: E-D panel for k"
set xlabel "normalized delay (s)"
set ylabel "network energy (J)"
unset y2label
unset y2tics
plot "results/fig07b_k2.csv"  skip 1 using 3:2 with linespoints title "k=2", \
     "results/fig07b_k4.csv"  skip 1 using 3:2 with linespoints title "k=4", \
     "results/fig07b_k8.csv"  skip 1 using 3:2 with linespoints title "k=8", \
     "results/fig07b_k16.csv" skip 1 using 3:2 with linespoints title "k=16"

# --- Fig. 8(a): all algorithms ------------------------------------------------
set output "results/fig08a.png"
set title "Fig. 8(a) reproduction: E-D panel, lambda = 0.08"
set xlabel "normalized delay (s)"
set ylabel "network energy (J)"
plot "results/fig08a_etrain.csv" skip 1 using 3:2 with linespoints \
         title "eTrain (Theta swept)", \
     "results/fig08a_peres.csv"  skip 1 using 3:2 with linespoints \
         title "PerES (Omega swept)", \
     "results/fig08a_etime.csv"  skip 1 using 3:2 with linespoints \
         title "eTime (V swept)"
