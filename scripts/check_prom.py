#!/usr/bin/env python3
"""Prometheus exposition-format lint for the live telemetry plane
(docs/live_telemetry.md; the check.sh live-telemetry gate).

Validates a /metrics document — from a file, stdin, or fetched live from
a gateway's stats port — against the subset of the text format 0.0.4 the
etrain encoder emits, plus the gateway's metric contract:

  1. every non-comment line parses as  name{labels} value  with a valid
     metric name and a finite (or +Inf bucket) value;
  2. every sample's name is declared by a preceding # TYPE line, and
     counter samples end in _total;
  3. histogram bucket counts are cumulative (non-decreasing in le order,
     ending at le="+Inf" whose count equals <name>_count);
  4. family names appear in sorted order (the encoder's determinism
     contract: two scrapes of the same state are byte-identical);
  5. with --require, each named metric is present (exact family or
     sample name; a requirement containing '{' instead prefix-matches a
     sample's name{labels} — e.g. the sharded gateway's
     etrain_gateway_shard_connections{shard="0"} series).

With --port the script first polls /healthz until it answers 200 (or
--timeout seconds pass), then fetches /metrics itself — so the shell gate
needs no curl. Exits 0 when clean; prints every violation and exits 1.
Stdlib only — no pip installs, runs anywhere python3 exists.
"""
from __future__ import annotations

import argparse
import math
import re
import sys
import time
import urllib.error
import urllib.request

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{label="value",...} value  — labels optional; value is the rest.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def fetch(port: int, path: str, timeout_s: float) -> str:
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return response.read().decode("utf-8", errors="replace")


def wait_healthy(port: int, timeout_s: float) -> None:
    """Polls /healthz until it answers 200; raises after timeout_s."""
    deadline = time.monotonic() + timeout_s
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            fetch(port, "/healthz", timeout_s=1.0)
            return
        except (urllib.error.URLError, OSError) as error:
            last_error = error
            time.sleep(0.05)
    raise SystemExit(
        f"check_prom: /healthz on port {port} never answered 200 within "
        f"{timeout_s:.0f}s ({last_error})"
    )


def parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    return float(raw)  # raises ValueError on garbage


def lint(text: str, required: list[str]) -> list[str]:
    """Returns every violation found in one exposition document."""
    errors: list[str] = []
    declared: dict[str, str] = {}  # family name -> type
    family_order: list[str] = []
    # histogram family -> [(le, count)] in emission order, and its _count.
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}
    sample_names: set[str] = set()
    sample_series: list[str] = []  # name{labels} as emitted, for --require

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
            ):
                errors.append(f"line {lineno}: malformed TYPE line: {line}")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                errors.append(f"line {lineno}: invalid metric name {name!r}")
            if name in declared:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            declared[name] = parts[3]
            family_order.append(name)
            continue
        if line.startswith("#"):
            continue  # HELP and other comments

        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, labels, raw_value = match.groups()
        try:
            value = parse_value(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {raw_value!r}")
            continue
        if labels:
            for pair in labels[1:-1].split(","):
                if not LABEL_RE.match(pair):
                    errors.append(f"line {lineno}: malformed label {pair!r}")
        sample_names.add(name)
        sample_series.append(name + (labels or ""))

        # Histogram series attach their suffixed samples to the family.
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base is not None and declared.get(base) == "histogram":
                family = base
                break
        if family not in declared and name not in declared:
            errors.append(f"line {lineno}: sample {name} has no TYPE line")
            continue
        kind = declared.get(family, declared.get(name))
        if kind == "counter" and not name.endswith("_total"):
            errors.append(f"line {lineno}: counter {name} lacks _total")
        if kind == "counter" and (value < 0 or value != int(value)):
            errors.append(
                f"line {lineno}: counter {name} value {raw_value} is not a "
                "non-negative integer"
            )
        if kind == "histogram" and name.endswith("_bucket"):
            le_match = re.search(r'le="([^"]*)"', labels or "")
            if not le_match:
                errors.append(f"line {lineno}: bucket without le: {line!r}")
            else:
                buckets.setdefault(family, []).append(
                    (parse_value(le_match.group(1)), value)
                )
        if kind == "histogram" and name.endswith("_count"):
            counts[family] = value

    for family, series in buckets.items():
        les = [le for le, _ in series]
        if les != sorted(les):
            errors.append(f"histogram {family}: le bounds out of order")
        values = [count for _, count in series]
        if values != sorted(values):
            errors.append(f"histogram {family}: bucket counts not cumulative")
        if not series or series[-1][0] != math.inf:
            errors.append(f"histogram {family}: missing le=\"+Inf\" bucket")
        elif family in counts and series[-1][1] != counts[family]:
            errors.append(
                f"histogram {family}: +Inf bucket {series[-1][1]} != "
                f"_count {counts[family]}"
            )

    if family_order != sorted(family_order):
        errors.append(
            "family order is not sorted — the encoder's determinism "
            "contract is broken"
        )

    for want in required:
        if "{" in want:
            # Labeled requirement: prefix-match against emitted series so
            # `family{shard="1"}` matches regardless of trailing labels.
            if not any(series.startswith(want) for series in sample_series):
                errors.append(f"required series missing: {want}")
        elif want not in declared and want not in sample_names:
            errors.append(f"required metric missing: {want}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Lint a Prometheus /metrics document (see module doc)."
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("path", nargs="?", help="file to lint ('-' = stdin)")
    source.add_argument(
        "--port",
        type=int,
        help="fetch /metrics from 127.0.0.1:PORT (waits on /healthz first)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="seconds to wait for /healthz with --port (default 10)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="METRIC",
        help="assert this metric is present (repeatable); with '{' the "
        "whole name{labels} prefix must match an emitted series",
    )
    args = parser.parse_args()

    if args.port is not None:
        wait_healthy(args.port, args.timeout)
        text = fetch(args.port, "/metrics", timeout_s=5.0)
    elif args.path in (None, "-"):
        text = sys.stdin.read()
    else:
        with open(args.path, encoding="utf-8") as handle:
            text = handle.read()

    errors = lint(text, args.require)
    for error in errors:
        print(f"check_prom: {error}")
    if errors:
        return 1
    samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    print(f"check_prom: OK ({samples} samples, {len(args.require)} required)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
