#!/usr/bin/env python3
"""Dependency-free docs lint (scripts/check.sh and the docs_lint ctest).

Two checks over every tracked markdown file in the repo:

  1. every intra-repo markdown link resolves to an existing file or
     directory (http(s)/mailto and pure-anchor links are skipped);
  2. every page under docs/ is reachable from README.md by following
     intra-repo markdown links — an orphaned doc is a doc nobody finds.

Exits 0 when clean; prints every violation and exits 1 otherwise.
Stdlib only — no pip installs, runs anywhere python3 exists.
"""
from __future__ import annotations

import os
import re
import sys

# [text](target) — target captured up to the closing paren. Images
# (![alt](target)) match too via the same pattern, which is what we want.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Inline code spans can contain bracket-paren sequences that are not
# links; strip fenced code blocks and inline code before scanning.
FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def markdown_files(root: str) -> list[str]:
    """Every .md file in the repo, skipping build trees and dot-dirs."""
    skip_dirs = {".git", "build", "results", "third_party"}
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in skip_dirs
            and not d.startswith(".")
            and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def extract_links(path: str) -> list[str]:
    """Intra-repo link targets of one markdown file, code blocks excluded."""
    links = []
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(INLINE_CODE_RE.sub("`", line)):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                target = target.split("#", 1)[0]  # drop the anchor
                if not target:  # pure same-page anchor
                    continue
                links.append(target)
    return links


def resolve(source: str, target: str, root: str) -> str:
    """Absolute path a link points at (relative to its source file)."""
    if target.startswith("/"):
        return os.path.normpath(os.path.join(root, target.lstrip("/")))
    return os.path.normpath(os.path.join(os.path.dirname(source), target))


def main() -> int:
    root = repo_root()
    files = markdown_files(root)
    errors = []

    # Link graph over markdown files, for the reachability pass.
    md_links: dict[str, set[str]] = {path: set() for path in files}

    for path in files:
        rel_source = os.path.relpath(path, root)
        for target in extract_links(path):
            resolved = resolve(path, target, root)
            if not os.path.exists(resolved):
                errors.append(
                    f"{rel_source}: broken link -> {target}"
                )
                continue
            if resolved.endswith(".md") and resolved in md_links:
                md_links[path].add(resolved)

    # Reachability: BFS over markdown links from README.md; every page
    # under docs/ must be visited.
    readme = os.path.join(root, "README.md")
    if not os.path.exists(readme):
        errors.append("README.md missing at repo root")
    else:
        seen = {readme}
        frontier = [readme]
        while frontier:
            page = frontier.pop()
            for target in md_links.get(page, ()):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        docs_dir = os.path.join(root, "docs")
        for path in files:
            if path.startswith(docs_dir + os.sep) and path not in seen:
                errors.append(
                    f"{os.path.relpath(path, root)}: not reachable from "
                    "README.md via markdown links"
                )

    if errors:
        for error in errors:
            print(f"check_docs: {error}")
        print(f"check_docs: {len(errors)} problem(s) in {len(files)} files")
        return 1
    print(f"check_docs: {len(files)} markdown files OK "
          "(links resolve, docs/ reachable from README)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
