# Empty compiler generated dependencies file for etrain_cli.
# This may be replaced when dependencies are built.
