file(REMOVE_RECURSE
  "CMakeFiles/etrain_cli.dir/etrain_cli.cpp.o"
  "CMakeFiles/etrain_cli.dir/etrain_cli.cpp.o.d"
  "etrain_cli"
  "etrain_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
