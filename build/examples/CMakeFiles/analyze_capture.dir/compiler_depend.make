# Empty compiler generated dependencies file for analyze_capture.
# This may be replaced when dependencies are built.
