file(REMOVE_RECURSE
  "CMakeFiles/cloud_sync.dir/cloud_sync.cpp.o"
  "CMakeFiles/cloud_sync.dir/cloud_sync.cpp.o.d"
  "cloud_sync"
  "cloud_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
