# Empty compiler generated dependencies file for cloud_sync.
# This may be replaced when dependencies are built.
