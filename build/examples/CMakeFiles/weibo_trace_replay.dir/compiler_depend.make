# Empty compiler generated dependencies file for weibo_trace_replay.
# This may be replaced when dependencies are built.
