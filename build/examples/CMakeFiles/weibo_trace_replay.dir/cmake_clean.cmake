file(REMOVE_RECURSE
  "CMakeFiles/weibo_trace_replay.dir/weibo_trace_replay.cpp.o"
  "CMakeFiles/weibo_trace_replay.dir/weibo_trace_replay.cpp.o.d"
  "weibo_trace_replay"
  "weibo_trace_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weibo_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
