# Empty compiler generated dependencies file for email_batching.
# This may be replaced when dependencies are built.
