file(REMOVE_RECURSE
  "CMakeFiles/email_batching.dir/email_batching.cpp.o"
  "CMakeFiles/email_batching.dir/email_batching.cpp.o.d"
  "email_batching"
  "email_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
