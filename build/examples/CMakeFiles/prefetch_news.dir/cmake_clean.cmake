file(REMOVE_RECURSE
  "CMakeFiles/prefetch_news.dir/prefetch_news.cpp.o"
  "CMakeFiles/prefetch_news.dir/prefetch_news.cpp.o.d"
  "prefetch_news"
  "prefetch_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
