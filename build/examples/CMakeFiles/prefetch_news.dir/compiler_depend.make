# Empty compiler generated dependencies file for prefetch_news.
# This may be replaced when dependencies are built.
