file(REMOVE_RECURSE
  "../bench/bench_alarm_batching"
  "../bench/bench_alarm_batching.pdb"
  "CMakeFiles/bench_alarm_batching.dir/bench_alarm_batching.cpp.o"
  "CMakeFiles/bench_alarm_batching.dir/bench_alarm_batching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alarm_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
