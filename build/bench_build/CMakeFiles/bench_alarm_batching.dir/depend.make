# Empty dependencies file for bench_alarm_batching.
# This may be replaced when dependencies are built.
