file(REMOVE_RECURSE
  "../bench/bench_fig04_power_states"
  "../bench/bench_fig04_power_states.pdb"
  "CMakeFiles/bench_fig04_power_states.dir/bench_fig04_power_states.cpp.o"
  "CMakeFiles/bench_fig04_power_states.dir/bench_fig04_power_states.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_power_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
