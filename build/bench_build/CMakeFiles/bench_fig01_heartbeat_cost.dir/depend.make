# Empty dependencies file for bench_fig01_heartbeat_cost.
# This may be replaced when dependencies are built.
