file(REMOVE_RECURSE
  "../bench/bench_fig07_parameters"
  "../bench/bench_fig07_parameters.pdb"
  "CMakeFiles/bench_fig07_parameters.dir/bench_fig07_parameters.cpp.o"
  "CMakeFiles/bench_fig07_parameters.dir/bench_fig07_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
