file(REMOVE_RECURSE
  "../bench/bench_fig02_toy_example"
  "../bench/bench_fig02_toy_example.pdb"
  "CMakeFiles/bench_fig02_toy_example.dir/bench_fig02_toy_example.cpp.o"
  "CMakeFiles/bench_fig02_toy_example.dir/bench_fig02_toy_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_toy_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
