file(REMOVE_RECURSE
  "../bench/bench_summary"
  "../bench/bench_summary.pdb"
  "CMakeFiles/bench_summary.dir/bench_summary.cpp.o"
  "CMakeFiles/bench_summary.dir/bench_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
