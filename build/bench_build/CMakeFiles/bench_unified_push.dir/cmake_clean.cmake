file(REMOVE_RECURSE
  "../bench/bench_unified_push"
  "../bench/bench_unified_push.pdb"
  "CMakeFiles/bench_unified_push.dir/bench_unified_push.cpp.o"
  "CMakeFiles/bench_unified_push.dir/bench_unified_push.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unified_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
