# Empty compiler generated dependencies file for bench_unified_push.
# This may be replaced when dependencies are built.
