# Empty dependencies file for bench_fig06_cost_profiles.
# This may be replaced when dependencies are built.
