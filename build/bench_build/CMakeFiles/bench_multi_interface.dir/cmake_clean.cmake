file(REMOVE_RECURSE
  "../bench/bench_multi_interface"
  "../bench/bench_multi_interface.pdb"
  "CMakeFiles/bench_multi_interface.dir/bench_multi_interface.cpp.o"
  "CMakeFiles/bench_multi_interface.dir/bench_multi_interface.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
