# Empty compiler generated dependencies file for bench_multi_interface.
# This may be replaced when dependencies are built.
