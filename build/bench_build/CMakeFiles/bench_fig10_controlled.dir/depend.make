# Empty dependencies file for bench_fig10_controlled.
# This may be replaced when dependencies are built.
