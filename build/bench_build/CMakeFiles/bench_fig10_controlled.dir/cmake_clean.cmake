file(REMOVE_RECURSE
  "../bench/bench_fig10_controlled"
  "../bench/bench_fig10_controlled.pdb"
  "CMakeFiles/bench_fig10_controlled.dir/bench_fig10_controlled.cpp.o"
  "CMakeFiles/bench_fig10_controlled.dir/bench_fig10_controlled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
