file(REMOVE_RECURSE
  "../bench/bench_fig11_activeness"
  "../bench/bench_fig11_activeness.pdb"
  "CMakeFiles/bench_fig11_activeness.dir/bench_fig11_activeness.cpp.o"
  "CMakeFiles/bench_fig11_activeness.dir/bench_fig11_activeness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_activeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
