# Empty dependencies file for bench_fig03_timing.
# This may be replaced when dependencies are built.
