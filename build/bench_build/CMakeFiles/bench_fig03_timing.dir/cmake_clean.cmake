file(REMOVE_RECURSE
  "../bench/bench_fig03_timing"
  "../bench/bench_fig03_timing.pdb"
  "CMakeFiles/bench_fig03_timing.dir/bench_fig03_timing.cpp.o"
  "CMakeFiles/bench_fig03_timing.dir/bench_fig03_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
