# Empty dependencies file for radio_power_model_test.
# This may be replaced when dependencies are built.
