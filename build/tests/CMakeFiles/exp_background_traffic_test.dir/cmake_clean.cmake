file(REMOVE_RECURSE
  "CMakeFiles/exp_background_traffic_test.dir/exp_background_traffic_test.cpp.o"
  "CMakeFiles/exp_background_traffic_test.dir/exp_background_traffic_test.cpp.o.d"
  "exp_background_traffic_test"
  "exp_background_traffic_test.pdb"
  "exp_background_traffic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_background_traffic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
