# Empty dependencies file for exp_background_traffic_test.
# This may be replaced when dependencies are built.
