file(REMOVE_RECURSE
  "CMakeFiles/exp_policy_properties_test.dir/exp_policy_properties_test.cpp.o"
  "CMakeFiles/exp_policy_properties_test.dir/exp_policy_properties_test.cpp.o.d"
  "exp_policy_properties_test"
  "exp_policy_properties_test.pdb"
  "exp_policy_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_policy_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
