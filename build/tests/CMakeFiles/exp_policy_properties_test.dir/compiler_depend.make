# Empty compiler generated dependencies file for exp_policy_properties_test.
# This may be replaced when dependencies are built.
