# Empty dependencies file for apps_heartbeat_spec_test.
# This may be replaced when dependencies are built.
