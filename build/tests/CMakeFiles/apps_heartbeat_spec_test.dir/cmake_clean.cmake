file(REMOVE_RECURSE
  "CMakeFiles/apps_heartbeat_spec_test.dir/apps_heartbeat_spec_test.cpp.o"
  "CMakeFiles/apps_heartbeat_spec_test.dir/apps_heartbeat_spec_test.cpp.o.d"
  "apps_heartbeat_spec_test"
  "apps_heartbeat_spec_test.pdb"
  "apps_heartbeat_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_heartbeat_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
