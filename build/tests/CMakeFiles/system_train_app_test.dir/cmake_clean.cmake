file(REMOVE_RECURSE
  "CMakeFiles/system_train_app_test.dir/system_train_app_test.cpp.o"
  "CMakeFiles/system_train_app_test.dir/system_train_app_test.cpp.o.d"
  "system_train_app_test"
  "system_train_app_test.pdb"
  "system_train_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_train_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
