# Empty dependencies file for system_train_app_test.
# This may be replaced when dependencies are built.
