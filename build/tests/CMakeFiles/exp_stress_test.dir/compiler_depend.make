# Empty compiler generated dependencies file for exp_stress_test.
# This may be replaced when dependencies are built.
