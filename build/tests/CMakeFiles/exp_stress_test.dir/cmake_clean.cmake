file(REMOVE_RECURSE
  "CMakeFiles/exp_stress_test.dir/exp_stress_test.cpp.o"
  "CMakeFiles/exp_stress_test.dir/exp_stress_test.cpp.o.d"
  "exp_stress_test"
  "exp_stress_test.pdb"
  "exp_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
