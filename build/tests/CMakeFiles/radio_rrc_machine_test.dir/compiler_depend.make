# Empty compiler generated dependencies file for radio_rrc_machine_test.
# This may be replaced when dependencies are built.
