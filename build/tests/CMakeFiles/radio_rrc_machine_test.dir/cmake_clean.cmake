file(REMOVE_RECURSE
  "CMakeFiles/radio_rrc_machine_test.dir/radio_rrc_machine_test.cpp.o"
  "CMakeFiles/radio_rrc_machine_test.dir/radio_rrc_machine_test.cpp.o.d"
  "radio_rrc_machine_test"
  "radio_rrc_machine_test.pdb"
  "radio_rrc_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_rrc_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
