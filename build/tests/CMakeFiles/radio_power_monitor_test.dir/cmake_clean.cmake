file(REMOVE_RECURSE
  "CMakeFiles/radio_power_monitor_test.dir/radio_power_monitor_test.cpp.o"
  "CMakeFiles/radio_power_monitor_test.dir/radio_power_monitor_test.cpp.o.d"
  "radio_power_monitor_test"
  "radio_power_monitor_test.pdb"
  "radio_power_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_power_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
