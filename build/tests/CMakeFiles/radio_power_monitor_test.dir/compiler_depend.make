# Empty compiler generated dependencies file for radio_power_monitor_test.
# This may be replaced when dependencies are built.
