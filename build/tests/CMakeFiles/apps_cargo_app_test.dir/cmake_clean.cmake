file(REMOVE_RECURSE
  "CMakeFiles/apps_cargo_app_test.dir/apps_cargo_app_test.cpp.o"
  "CMakeFiles/apps_cargo_app_test.dir/apps_cargo_app_test.cpp.o.d"
  "apps_cargo_app_test"
  "apps_cargo_app_test.pdb"
  "apps_cargo_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_cargo_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
