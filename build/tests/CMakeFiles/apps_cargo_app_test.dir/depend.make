# Empty dependencies file for apps_cargo_app_test.
# This may be replaced when dependencies are built.
