file(REMOVE_RECURSE
  "CMakeFiles/android_pcap_test.dir/android_pcap_test.cpp.o"
  "CMakeFiles/android_pcap_test.dir/android_pcap_test.cpp.o.d"
  "android_pcap_test"
  "android_pcap_test.pdb"
  "android_pcap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_pcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
