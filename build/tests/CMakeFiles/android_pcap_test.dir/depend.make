# Empty dependencies file for android_pcap_test.
# This may be replaced when dependencies are built.
