file(REMOVE_RECURSE
  "CMakeFiles/net_bandwidth_trace_test.dir/net_bandwidth_trace_test.cpp.o"
  "CMakeFiles/net_bandwidth_trace_test.dir/net_bandwidth_trace_test.cpp.o.d"
  "net_bandwidth_trace_test"
  "net_bandwidth_trace_test.pdb"
  "net_bandwidth_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_bandwidth_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
