file(REMOVE_RECURSE
  "CMakeFiles/core_offline_solver_test.dir/core_offline_solver_test.cpp.o"
  "CMakeFiles/core_offline_solver_test.dir/core_offline_solver_test.cpp.o.d"
  "core_offline_solver_test"
  "core_offline_solver_test.pdb"
  "core_offline_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_offline_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
