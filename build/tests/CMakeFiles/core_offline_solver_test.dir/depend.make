# Empty dependencies file for core_offline_solver_test.
# This may be replaced when dependencies are built.
