file(REMOVE_RECURSE
  "CMakeFiles/android_substrate_test.dir/android_substrate_test.cpp.o"
  "CMakeFiles/android_substrate_test.dir/android_substrate_test.cpp.o.d"
  "android_substrate_test"
  "android_substrate_test.pdb"
  "android_substrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
