# Empty dependencies file for android_substrate_test.
# This may be replaced when dependencies are built.
