# Empty compiler generated dependencies file for android_heartbeat_monitor_test.
# This may be replaced when dependencies are built.
