file(REMOVE_RECURSE
  "CMakeFiles/android_heartbeat_monitor_test.dir/android_heartbeat_monitor_test.cpp.o"
  "CMakeFiles/android_heartbeat_monitor_test.dir/android_heartbeat_monitor_test.cpp.o.d"
  "android_heartbeat_monitor_test"
  "android_heartbeat_monitor_test.pdb"
  "android_heartbeat_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/android_heartbeat_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
