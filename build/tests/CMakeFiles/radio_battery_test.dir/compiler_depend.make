# Empty compiler generated dependencies file for radio_battery_test.
# This may be replaced when dependencies are built.
