file(REMOVE_RECURSE
  "CMakeFiles/radio_battery_test.dir/radio_battery_test.cpp.o"
  "CMakeFiles/radio_battery_test.dir/radio_battery_test.cpp.o.d"
  "radio_battery_test"
  "radio_battery_test.pdb"
  "radio_battery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
