file(REMOVE_RECURSE
  "CMakeFiles/exp_direction_test.dir/exp_direction_test.cpp.o"
  "CMakeFiles/exp_direction_test.dir/exp_direction_test.cpp.o.d"
  "exp_direction_test"
  "exp_direction_test.pdb"
  "exp_direction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_direction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
