# Empty compiler generated dependencies file for exp_slotted_sim_test.
# This may be replaced when dependencies are built.
