file(REMOVE_RECURSE
  "CMakeFiles/exp_slotted_sim_test.dir/exp_slotted_sim_test.cpp.o"
  "CMakeFiles/exp_slotted_sim_test.dir/exp_slotted_sim_test.cpp.o.d"
  "exp_slotted_sim_test"
  "exp_slotted_sim_test.pdb"
  "exp_slotted_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_slotted_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
