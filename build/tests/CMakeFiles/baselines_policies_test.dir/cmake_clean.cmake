file(REMOVE_RECURSE
  "CMakeFiles/baselines_policies_test.dir/baselines_policies_test.cpp.o"
  "CMakeFiles/baselines_policies_test.dir/baselines_policies_test.cpp.o.d"
  "baselines_policies_test"
  "baselines_policies_test.pdb"
  "baselines_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
