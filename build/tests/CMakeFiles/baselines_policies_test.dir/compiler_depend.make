# Empty compiler generated dependencies file for baselines_policies_test.
# This may be replaced when dependencies are built.
