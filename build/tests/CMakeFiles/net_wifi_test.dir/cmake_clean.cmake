file(REMOVE_RECURSE
  "CMakeFiles/net_wifi_test.dir/net_wifi_test.cpp.o"
  "CMakeFiles/net_wifi_test.dir/net_wifi_test.cpp.o.d"
  "net_wifi_test"
  "net_wifi_test.pdb"
  "net_wifi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_wifi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
