# Empty compiler generated dependencies file for net_wifi_test.
# This may be replaced when dependencies are built.
