# Empty dependencies file for system_service_test.
# This may be replaced when dependencies are built.
