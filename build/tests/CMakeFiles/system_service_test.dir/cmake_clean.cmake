file(REMOVE_RECURSE
  "CMakeFiles/system_service_test.dir/system_service_test.cpp.o"
  "CMakeFiles/system_service_test.dir/system_service_test.cpp.o.d"
  "system_service_test"
  "system_service_test.pdb"
  "system_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
