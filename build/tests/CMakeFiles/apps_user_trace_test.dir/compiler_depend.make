# Empty compiler generated dependencies file for apps_user_trace_test.
# This may be replaced when dependencies are built.
