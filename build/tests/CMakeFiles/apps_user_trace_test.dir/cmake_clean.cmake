file(REMOVE_RECURSE
  "CMakeFiles/apps_user_trace_test.dir/apps_user_trace_test.cpp.o"
  "CMakeFiles/apps_user_trace_test.dir/apps_user_trace_test.cpp.o.d"
  "apps_user_trace_test"
  "apps_user_trace_test.pdb"
  "apps_user_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_user_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
