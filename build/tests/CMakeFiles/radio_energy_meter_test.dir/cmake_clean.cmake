file(REMOVE_RECURSE
  "CMakeFiles/radio_energy_meter_test.dir/radio_energy_meter_test.cpp.o"
  "CMakeFiles/radio_energy_meter_test.dir/radio_energy_meter_test.cpp.o.d"
  "radio_energy_meter_test"
  "radio_energy_meter_test.pdb"
  "radio_energy_meter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_energy_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
