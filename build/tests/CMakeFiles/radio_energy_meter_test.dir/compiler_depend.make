# Empty compiler generated dependencies file for radio_energy_meter_test.
# This may be replaced when dependencies are built.
