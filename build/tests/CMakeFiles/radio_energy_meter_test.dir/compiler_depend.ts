# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for radio_energy_meter_test.
