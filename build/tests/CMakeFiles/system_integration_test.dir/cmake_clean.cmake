file(REMOVE_RECURSE
  "CMakeFiles/system_integration_test.dir/system_integration_test.cpp.o"
  "CMakeFiles/system_integration_test.dir/system_integration_test.cpp.o.d"
  "system_integration_test"
  "system_integration_test.pdb"
  "system_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
