file(REMOVE_RECURSE
  "CMakeFiles/radio_presets_test.dir/radio_presets_test.cpp.o"
  "CMakeFiles/radio_presets_test.dir/radio_presets_test.cpp.o.d"
  "radio_presets_test"
  "radio_presets_test.pdb"
  "radio_presets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_presets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
