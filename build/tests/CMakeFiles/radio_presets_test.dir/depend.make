# Empty dependencies file for radio_presets_test.
# This may be replaced when dependencies are built.
