# Empty compiler generated dependencies file for exp_replication_test.
# This may be replaced when dependencies are built.
