file(REMOVE_RECURSE
  "CMakeFiles/exp_replication_test.dir/exp_replication_test.cpp.o"
  "CMakeFiles/exp_replication_test.dir/exp_replication_test.cpp.o.d"
  "exp_replication_test"
  "exp_replication_test.pdb"
  "exp_replication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
