# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for net_synthetic_bandwidth_test.
