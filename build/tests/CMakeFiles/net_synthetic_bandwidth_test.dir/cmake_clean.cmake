file(REMOVE_RECURSE
  "CMakeFiles/net_synthetic_bandwidth_test.dir/net_synthetic_bandwidth_test.cpp.o"
  "CMakeFiles/net_synthetic_bandwidth_test.dir/net_synthetic_bandwidth_test.cpp.o.d"
  "net_synthetic_bandwidth_test"
  "net_synthetic_bandwidth_test.pdb"
  "net_synthetic_bandwidth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_synthetic_bandwidth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
