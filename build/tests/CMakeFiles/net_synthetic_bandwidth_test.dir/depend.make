# Empty dependencies file for net_synthetic_bandwidth_test.
# This may be replaced when dependencies are built.
