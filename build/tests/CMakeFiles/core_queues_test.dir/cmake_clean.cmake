file(REMOVE_RECURSE
  "CMakeFiles/core_queues_test.dir/core_queues_test.cpp.o"
  "CMakeFiles/core_queues_test.dir/core_queues_test.cpp.o.d"
  "core_queues_test"
  "core_queues_test.pdb"
  "core_queues_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_queues_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
