file(REMOVE_RECURSE
  "libetrain_sim.a"
)
