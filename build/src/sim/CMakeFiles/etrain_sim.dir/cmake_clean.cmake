file(REMOVE_RECURSE
  "CMakeFiles/etrain_sim.dir/simulator.cc.o"
  "CMakeFiles/etrain_sim.dir/simulator.cc.o.d"
  "libetrain_sim.a"
  "libetrain_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
