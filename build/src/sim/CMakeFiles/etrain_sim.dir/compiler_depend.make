# Empty compiler generated dependencies file for etrain_sim.
# This may be replaced when dependencies are built.
