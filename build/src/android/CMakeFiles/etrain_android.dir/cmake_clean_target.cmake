file(REMOVE_RECURSE
  "libetrain_android.a"
)
