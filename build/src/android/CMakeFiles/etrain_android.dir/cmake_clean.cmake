file(REMOVE_RECURSE
  "CMakeFiles/etrain_android.dir/alarm_manager.cc.o"
  "CMakeFiles/etrain_android.dir/alarm_manager.cc.o.d"
  "CMakeFiles/etrain_android.dir/broadcast_bus.cc.o"
  "CMakeFiles/etrain_android.dir/broadcast_bus.cc.o.d"
  "CMakeFiles/etrain_android.dir/heartbeat_monitor.cc.o"
  "CMakeFiles/etrain_android.dir/heartbeat_monitor.cc.o.d"
  "CMakeFiles/etrain_android.dir/pcap.cc.o"
  "CMakeFiles/etrain_android.dir/pcap.cc.o.d"
  "CMakeFiles/etrain_android.dir/xposed.cc.o"
  "CMakeFiles/etrain_android.dir/xposed.cc.o.d"
  "libetrain_android.a"
  "libetrain_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
