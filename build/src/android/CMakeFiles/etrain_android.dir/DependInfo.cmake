
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/alarm_manager.cc" "src/android/CMakeFiles/etrain_android.dir/alarm_manager.cc.o" "gcc" "src/android/CMakeFiles/etrain_android.dir/alarm_manager.cc.o.d"
  "/root/repo/src/android/broadcast_bus.cc" "src/android/CMakeFiles/etrain_android.dir/broadcast_bus.cc.o" "gcc" "src/android/CMakeFiles/etrain_android.dir/broadcast_bus.cc.o.d"
  "/root/repo/src/android/heartbeat_monitor.cc" "src/android/CMakeFiles/etrain_android.dir/heartbeat_monitor.cc.o" "gcc" "src/android/CMakeFiles/etrain_android.dir/heartbeat_monitor.cc.o.d"
  "/root/repo/src/android/pcap.cc" "src/android/CMakeFiles/etrain_android.dir/pcap.cc.o" "gcc" "src/android/CMakeFiles/etrain_android.dir/pcap.cc.o.d"
  "/root/repo/src/android/xposed.cc" "src/android/CMakeFiles/etrain_android.dir/xposed.cc.o" "gcc" "src/android/CMakeFiles/etrain_android.dir/xposed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/etrain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/etrain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/etrain_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/etrain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/etrain_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
