# Empty dependencies file for etrain_android.
# This may be replaced when dependencies are built.
