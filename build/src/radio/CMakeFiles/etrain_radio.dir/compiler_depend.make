# Empty compiler generated dependencies file for etrain_radio.
# This may be replaced when dependencies are built.
