
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/battery.cc" "src/radio/CMakeFiles/etrain_radio.dir/battery.cc.o" "gcc" "src/radio/CMakeFiles/etrain_radio.dir/battery.cc.o.d"
  "/root/repo/src/radio/energy_meter.cc" "src/radio/CMakeFiles/etrain_radio.dir/energy_meter.cc.o" "gcc" "src/radio/CMakeFiles/etrain_radio.dir/energy_meter.cc.o.d"
  "/root/repo/src/radio/power_model.cc" "src/radio/CMakeFiles/etrain_radio.dir/power_model.cc.o" "gcc" "src/radio/CMakeFiles/etrain_radio.dir/power_model.cc.o.d"
  "/root/repo/src/radio/power_monitor.cc" "src/radio/CMakeFiles/etrain_radio.dir/power_monitor.cc.o" "gcc" "src/radio/CMakeFiles/etrain_radio.dir/power_monitor.cc.o.d"
  "/root/repo/src/radio/rrc_machine.cc" "src/radio/CMakeFiles/etrain_radio.dir/rrc_machine.cc.o" "gcc" "src/radio/CMakeFiles/etrain_radio.dir/rrc_machine.cc.o.d"
  "/root/repo/src/radio/transmission_log.cc" "src/radio/CMakeFiles/etrain_radio.dir/transmission_log.cc.o" "gcc" "src/radio/CMakeFiles/etrain_radio.dir/transmission_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/etrain_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
