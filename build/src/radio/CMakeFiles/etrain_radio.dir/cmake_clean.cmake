file(REMOVE_RECURSE
  "CMakeFiles/etrain_radio.dir/battery.cc.o"
  "CMakeFiles/etrain_radio.dir/battery.cc.o.d"
  "CMakeFiles/etrain_radio.dir/energy_meter.cc.o"
  "CMakeFiles/etrain_radio.dir/energy_meter.cc.o.d"
  "CMakeFiles/etrain_radio.dir/power_model.cc.o"
  "CMakeFiles/etrain_radio.dir/power_model.cc.o.d"
  "CMakeFiles/etrain_radio.dir/power_monitor.cc.o"
  "CMakeFiles/etrain_radio.dir/power_monitor.cc.o.d"
  "CMakeFiles/etrain_radio.dir/rrc_machine.cc.o"
  "CMakeFiles/etrain_radio.dir/rrc_machine.cc.o.d"
  "CMakeFiles/etrain_radio.dir/transmission_log.cc.o"
  "CMakeFiles/etrain_radio.dir/transmission_log.cc.o.d"
  "libetrain_radio.a"
  "libetrain_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
