file(REMOVE_RECURSE
  "libetrain_radio.a"
)
