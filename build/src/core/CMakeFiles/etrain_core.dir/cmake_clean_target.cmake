file(REMOVE_RECURSE
  "libetrain_core.a"
)
