# Empty dependencies file for etrain_core.
# This may be replaced when dependencies are built.
