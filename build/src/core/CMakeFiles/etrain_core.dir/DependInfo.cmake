
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_profile.cc" "src/core/CMakeFiles/etrain_core.dir/cost_profile.cc.o" "gcc" "src/core/CMakeFiles/etrain_core.dir/cost_profile.cc.o.d"
  "/root/repo/src/core/etrain_scheduler.cc" "src/core/CMakeFiles/etrain_core.dir/etrain_scheduler.cc.o" "gcc" "src/core/CMakeFiles/etrain_core.dir/etrain_scheduler.cc.o.d"
  "/root/repo/src/core/offline_solver.cc" "src/core/CMakeFiles/etrain_core.dir/offline_solver.cc.o" "gcc" "src/core/CMakeFiles/etrain_core.dir/offline_solver.cc.o.d"
  "/root/repo/src/core/queues.cc" "src/core/CMakeFiles/etrain_core.dir/queues.cc.o" "gcc" "src/core/CMakeFiles/etrain_core.dir/queues.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/etrain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/etrain_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
