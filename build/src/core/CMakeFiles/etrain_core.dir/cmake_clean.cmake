file(REMOVE_RECURSE
  "CMakeFiles/etrain_core.dir/cost_profile.cc.o"
  "CMakeFiles/etrain_core.dir/cost_profile.cc.o.d"
  "CMakeFiles/etrain_core.dir/etrain_scheduler.cc.o"
  "CMakeFiles/etrain_core.dir/etrain_scheduler.cc.o.d"
  "CMakeFiles/etrain_core.dir/offline_solver.cc.o"
  "CMakeFiles/etrain_core.dir/offline_solver.cc.o.d"
  "CMakeFiles/etrain_core.dir/queues.cc.o"
  "CMakeFiles/etrain_core.dir/queues.cc.o.d"
  "libetrain_core.a"
  "libetrain_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
