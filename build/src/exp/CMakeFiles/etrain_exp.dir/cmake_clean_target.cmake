file(REMOVE_RECURSE
  "libetrain_exp.a"
)
