# Empty dependencies file for etrain_exp.
# This may be replaced when dependencies are built.
