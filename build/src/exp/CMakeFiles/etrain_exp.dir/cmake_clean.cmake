file(REMOVE_RECURSE
  "CMakeFiles/etrain_exp.dir/figure_export.cc.o"
  "CMakeFiles/etrain_exp.dir/figure_export.cc.o.d"
  "CMakeFiles/etrain_exp.dir/metrics.cc.o"
  "CMakeFiles/etrain_exp.dir/metrics.cc.o.d"
  "CMakeFiles/etrain_exp.dir/replication.cc.o"
  "CMakeFiles/etrain_exp.dir/replication.cc.o.d"
  "CMakeFiles/etrain_exp.dir/scenario.cc.o"
  "CMakeFiles/etrain_exp.dir/scenario.cc.o.d"
  "CMakeFiles/etrain_exp.dir/slotted_sim.cc.o"
  "CMakeFiles/etrain_exp.dir/slotted_sim.cc.o.d"
  "CMakeFiles/etrain_exp.dir/sweeps.cc.o"
  "CMakeFiles/etrain_exp.dir/sweeps.cc.o.d"
  "libetrain_exp.a"
  "libetrain_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
