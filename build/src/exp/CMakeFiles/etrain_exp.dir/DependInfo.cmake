
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/figure_export.cc" "src/exp/CMakeFiles/etrain_exp.dir/figure_export.cc.o" "gcc" "src/exp/CMakeFiles/etrain_exp.dir/figure_export.cc.o.d"
  "/root/repo/src/exp/metrics.cc" "src/exp/CMakeFiles/etrain_exp.dir/metrics.cc.o" "gcc" "src/exp/CMakeFiles/etrain_exp.dir/metrics.cc.o.d"
  "/root/repo/src/exp/replication.cc" "src/exp/CMakeFiles/etrain_exp.dir/replication.cc.o" "gcc" "src/exp/CMakeFiles/etrain_exp.dir/replication.cc.o.d"
  "/root/repo/src/exp/scenario.cc" "src/exp/CMakeFiles/etrain_exp.dir/scenario.cc.o" "gcc" "src/exp/CMakeFiles/etrain_exp.dir/scenario.cc.o.d"
  "/root/repo/src/exp/slotted_sim.cc" "src/exp/CMakeFiles/etrain_exp.dir/slotted_sim.cc.o" "gcc" "src/exp/CMakeFiles/etrain_exp.dir/slotted_sim.cc.o.d"
  "/root/repo/src/exp/sweeps.cc" "src/exp/CMakeFiles/etrain_exp.dir/sweeps.cc.o" "gcc" "src/exp/CMakeFiles/etrain_exp.dir/sweeps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/etrain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/etrain_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/etrain_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/etrain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/etrain_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/etrain_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
