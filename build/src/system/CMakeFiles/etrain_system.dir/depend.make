# Empty dependencies file for etrain_system.
# This may be replaced when dependencies are built.
