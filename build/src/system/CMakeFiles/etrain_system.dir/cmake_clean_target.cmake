file(REMOVE_RECURSE
  "libetrain_system.a"
)
