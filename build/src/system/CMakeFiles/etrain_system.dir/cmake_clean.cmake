file(REMOVE_RECURSE
  "CMakeFiles/etrain_system.dir/cargo_app_client.cc.o"
  "CMakeFiles/etrain_system.dir/cargo_app_client.cc.o.d"
  "CMakeFiles/etrain_system.dir/etrain_service.cc.o"
  "CMakeFiles/etrain_system.dir/etrain_service.cc.o.d"
  "CMakeFiles/etrain_system.dir/etrain_system.cc.o"
  "CMakeFiles/etrain_system.dir/etrain_system.cc.o.d"
  "CMakeFiles/etrain_system.dir/train_app.cc.o"
  "CMakeFiles/etrain_system.dir/train_app.cc.o.d"
  "libetrain_system.a"
  "libetrain_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
