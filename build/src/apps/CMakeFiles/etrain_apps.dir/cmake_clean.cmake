file(REMOVE_RECURSE
  "CMakeFiles/etrain_apps.dir/cargo_app.cc.o"
  "CMakeFiles/etrain_apps.dir/cargo_app.cc.o.d"
  "CMakeFiles/etrain_apps.dir/heartbeat_spec.cc.o"
  "CMakeFiles/etrain_apps.dir/heartbeat_spec.cc.o.d"
  "CMakeFiles/etrain_apps.dir/train_schedule.cc.o"
  "CMakeFiles/etrain_apps.dir/train_schedule.cc.o.d"
  "CMakeFiles/etrain_apps.dir/user_trace.cc.o"
  "CMakeFiles/etrain_apps.dir/user_trace.cc.o.d"
  "libetrain_apps.a"
  "libetrain_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
