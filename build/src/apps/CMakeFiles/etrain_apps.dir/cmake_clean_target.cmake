file(REMOVE_RECURSE
  "libetrain_apps.a"
)
