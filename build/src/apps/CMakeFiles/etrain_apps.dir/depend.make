# Empty dependencies file for etrain_apps.
# This may be replaced when dependencies are built.
