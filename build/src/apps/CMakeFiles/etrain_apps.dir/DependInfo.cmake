
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cargo_app.cc" "src/apps/CMakeFiles/etrain_apps.dir/cargo_app.cc.o" "gcc" "src/apps/CMakeFiles/etrain_apps.dir/cargo_app.cc.o.d"
  "/root/repo/src/apps/heartbeat_spec.cc" "src/apps/CMakeFiles/etrain_apps.dir/heartbeat_spec.cc.o" "gcc" "src/apps/CMakeFiles/etrain_apps.dir/heartbeat_spec.cc.o.d"
  "/root/repo/src/apps/train_schedule.cc" "src/apps/CMakeFiles/etrain_apps.dir/train_schedule.cc.o" "gcc" "src/apps/CMakeFiles/etrain_apps.dir/train_schedule.cc.o.d"
  "/root/repo/src/apps/user_trace.cc" "src/apps/CMakeFiles/etrain_apps.dir/user_trace.cc.o" "gcc" "src/apps/CMakeFiles/etrain_apps.dir/user_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/etrain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/etrain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/etrain_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
