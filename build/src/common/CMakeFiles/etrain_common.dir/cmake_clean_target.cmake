file(REMOVE_RECURSE
  "libetrain_common.a"
)
