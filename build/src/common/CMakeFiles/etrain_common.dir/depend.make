# Empty dependencies file for etrain_common.
# This may be replaced when dependencies are built.
