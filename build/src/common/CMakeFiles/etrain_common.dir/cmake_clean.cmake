file(REMOVE_RECURSE
  "CMakeFiles/etrain_common.dir/csv.cc.o"
  "CMakeFiles/etrain_common.dir/csv.cc.o.d"
  "CMakeFiles/etrain_common.dir/rng.cc.o"
  "CMakeFiles/etrain_common.dir/rng.cc.o.d"
  "CMakeFiles/etrain_common.dir/stats.cc.o"
  "CMakeFiles/etrain_common.dir/stats.cc.o.d"
  "CMakeFiles/etrain_common.dir/table.cc.o"
  "CMakeFiles/etrain_common.dir/table.cc.o.d"
  "CMakeFiles/etrain_common.dir/time.cc.o"
  "CMakeFiles/etrain_common.dir/time.cc.o.d"
  "libetrain_common.a"
  "libetrain_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
