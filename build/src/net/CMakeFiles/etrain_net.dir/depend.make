# Empty dependencies file for etrain_net.
# This may be replaced when dependencies are built.
