
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bandwidth_trace.cc" "src/net/CMakeFiles/etrain_net.dir/bandwidth_trace.cc.o" "gcc" "src/net/CMakeFiles/etrain_net.dir/bandwidth_trace.cc.o.d"
  "/root/repo/src/net/radio_link.cc" "src/net/CMakeFiles/etrain_net.dir/radio_link.cc.o" "gcc" "src/net/CMakeFiles/etrain_net.dir/radio_link.cc.o.d"
  "/root/repo/src/net/synthetic_bandwidth.cc" "src/net/CMakeFiles/etrain_net.dir/synthetic_bandwidth.cc.o" "gcc" "src/net/CMakeFiles/etrain_net.dir/synthetic_bandwidth.cc.o.d"
  "/root/repo/src/net/wifi_availability.cc" "src/net/CMakeFiles/etrain_net.dir/wifi_availability.cc.o" "gcc" "src/net/CMakeFiles/etrain_net.dir/wifi_availability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/etrain_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/etrain_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/etrain_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/etrain_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
