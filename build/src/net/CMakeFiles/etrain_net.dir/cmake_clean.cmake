file(REMOVE_RECURSE
  "CMakeFiles/etrain_net.dir/bandwidth_trace.cc.o"
  "CMakeFiles/etrain_net.dir/bandwidth_trace.cc.o.d"
  "CMakeFiles/etrain_net.dir/radio_link.cc.o"
  "CMakeFiles/etrain_net.dir/radio_link.cc.o.d"
  "CMakeFiles/etrain_net.dir/synthetic_bandwidth.cc.o"
  "CMakeFiles/etrain_net.dir/synthetic_bandwidth.cc.o.d"
  "CMakeFiles/etrain_net.dir/wifi_availability.cc.o"
  "CMakeFiles/etrain_net.dir/wifi_availability.cc.o.d"
  "libetrain_net.a"
  "libetrain_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
