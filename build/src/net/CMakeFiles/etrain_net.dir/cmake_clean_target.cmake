file(REMOVE_RECURSE
  "libetrain_net.a"
)
