
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_policy.cc" "src/baselines/CMakeFiles/etrain_baselines.dir/baseline_policy.cc.o" "gcc" "src/baselines/CMakeFiles/etrain_baselines.dir/baseline_policy.cc.o.d"
  "/root/repo/src/baselines/etime_policy.cc" "src/baselines/CMakeFiles/etrain_baselines.dir/etime_policy.cc.o" "gcc" "src/baselines/CMakeFiles/etrain_baselines.dir/etime_policy.cc.o.d"
  "/root/repo/src/baselines/multi_interface_policy.cc" "src/baselines/CMakeFiles/etrain_baselines.dir/multi_interface_policy.cc.o" "gcc" "src/baselines/CMakeFiles/etrain_baselines.dir/multi_interface_policy.cc.o.d"
  "/root/repo/src/baselines/oracle_policy.cc" "src/baselines/CMakeFiles/etrain_baselines.dir/oracle_policy.cc.o" "gcc" "src/baselines/CMakeFiles/etrain_baselines.dir/oracle_policy.cc.o.d"
  "/root/repo/src/baselines/peres_policy.cc" "src/baselines/CMakeFiles/etrain_baselines.dir/peres_policy.cc.o" "gcc" "src/baselines/CMakeFiles/etrain_baselines.dir/peres_policy.cc.o.d"
  "/root/repo/src/baselines/tailender_policy.cc" "src/baselines/CMakeFiles/etrain_baselines.dir/tailender_policy.cc.o" "gcc" "src/baselines/CMakeFiles/etrain_baselines.dir/tailender_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/etrain_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/etrain_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/etrain_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
