file(REMOVE_RECURSE
  "libetrain_baselines.a"
)
