file(REMOVE_RECURSE
  "CMakeFiles/etrain_baselines.dir/baseline_policy.cc.o"
  "CMakeFiles/etrain_baselines.dir/baseline_policy.cc.o.d"
  "CMakeFiles/etrain_baselines.dir/etime_policy.cc.o"
  "CMakeFiles/etrain_baselines.dir/etime_policy.cc.o.d"
  "CMakeFiles/etrain_baselines.dir/multi_interface_policy.cc.o"
  "CMakeFiles/etrain_baselines.dir/multi_interface_policy.cc.o.d"
  "CMakeFiles/etrain_baselines.dir/oracle_policy.cc.o"
  "CMakeFiles/etrain_baselines.dir/oracle_policy.cc.o.d"
  "CMakeFiles/etrain_baselines.dir/peres_policy.cc.o"
  "CMakeFiles/etrain_baselines.dir/peres_policy.cc.o.d"
  "CMakeFiles/etrain_baselines.dir/tailender_policy.cc.o"
  "CMakeFiles/etrain_baselines.dir/tailender_policy.cc.o.d"
  "libetrain_baselines.a"
  "libetrain_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etrain_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
