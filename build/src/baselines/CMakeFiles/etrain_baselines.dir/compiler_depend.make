# Empty compiler generated dependencies file for etrain_baselines.
# This may be replaced when dependencies are built.
